//! Batch query execution: the paper times 1000-query batches; services run
//! query streams. Parallelism is over queries (shared immutable index).
//!
//! Since the serving-layer redesign this module is a thin wrapper: the
//! parallel path runs on a persistent [`Executor`] (the process-wide
//! [`Executor::global`] by default, or one the caller brings via
//! [`QueryEngine::search_batch_on`]) instead of spawning fresh threads per
//! call.

use crate::engine::{QueryEngine, SearchParams, SearchResponse};
use crate::executor::Executor;
use crate::metrics::metric_name;
use crate::request::SearchRequest;
use crate::table::HashTable;
use gqr_l2h::HashModel;
use gqr_linalg::kernels::ScoreBlock;
use std::time::Instant;

impl<M: HashModel + ?Sized> QueryEngine<'_, M> {
    /// Run one search per query in parallel over `threads` chunks (`0` = all
    /// cores), on the process-wide [`Executor::global`]. Results keep query
    /// order. Falls back to the serial path for tiny batches where hand-off
    /// overhead dominates.
    ///
    /// With a metrics registry attached, every worker records its per-query
    /// phase spans into the shared registry (histogram recording is
    /// lock-free), and the batch as a whole records
    /// `gqr_batch_wall_ns`/`gqr_batch_queries_total`. With tracing enabled
    /// on the registry, each query in the batch makes its own sampling
    /// decision (the 1-in-N counter is shared process-wide), so a sampled
    /// batch query produces the same standalone span tree as a sampled
    /// [`QueryEngine::run`] — there is no batch-level parent span.
    pub fn search_batch(
        &self,
        queries: &[Vec<f32>],
        params: &SearchParams,
        threads: usize,
    ) -> Vec<SearchResponse> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 || queries.len() < 8 {
            let wall = Instant::now();
            let results = queries.iter().map(|q| self.search(q, params)).collect();
            self.flush_batch_metrics(params, queries.len(), wall);
            return results;
        }
        self.batch_on_chunked(Executor::global(), queries, params, threads)
    }

    /// Run one search per query on `exec`'s persistent workers, blocking
    /// until the whole batch is done. Results keep query order. This is the
    /// serving-path entry point: bring the executor whose queue, deadline,
    /// and metrics configuration the service owns.
    pub fn search_batch_on(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        params: &SearchParams,
    ) -> Vec<SearchResponse> {
        // Over-chunk relative to the worker count so an unlucky slow chunk
        // doesn't serialize the tail of the batch.
        let jobs = (exec.workers() * 4).max(1);
        self.batch_on_chunked(exec, queries, params, jobs)
    }

    fn batch_on_chunked(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        params: &SearchParams,
        jobs: usize,
    ) -> Vec<SearchResponse> {
        let wall = Instant::now();
        let mut results: Vec<Option<SearchResponse>> = vec![None; queries.len()];
        if !queries.is_empty() {
            let chunk = queries.len().div_ceil(jobs.min(queries.len()));
            exec.run_scoped(queries.chunks(chunk).zip(results.chunks_mut(chunk)).map(
                |(qs, out)| {
                    Box::new(move || {
                        // One gather/score tile per chunk job: every query
                        // in the chunk reuses the same scratch buffers.
                        let mut scratch = ScoreBlock::new(self.dim());
                        for (q, slot) in qs.iter().zip(out.iter_mut()) {
                            *slot = Some(self.run_with_scratch(
                                SearchRequest::new(q).params(*params),
                                &mut scratch,
                            ));
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                },
            ));
        }
        self.flush_batch_metrics(params, queries.len(), wall);
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn flush_batch_metrics(&self, params: &SearchParams, n_queries: usize, wall: Instant) {
        if self.metrics().is_enabled() {
            let strat = params.strategy.name();
            self.metrics().add(
                &metric_name("gqr_batch_queries_total", &[("strategy", strat)]),
                n_queries as u64,
            );
            self.metrics().record_duration(
                &metric_name("gqr_batch_wall_ns", &[("strategy", strat)]),
                wall.elapsed(),
            );
        }
    }
}

/// Convenience: aggregate recall of a result batch against ground truth.
pub fn batch_recall(results: &[SearchResponse], truth: &[Vec<u32>]) -> f64 {
    assert_eq!(results.len(), truth.len());
    if results.is_empty() {
        return 1.0;
    }
    let mut acc = 0.0;
    for (res, t) in results.iter().zip(truth) {
        if t.is_empty() {
            acc += 1.0;
            continue;
        }
        // Hash the truth row once; probing it per neighbor keeps the whole
        // aggregation linear instead of |neighbors|×|truth| per query.
        let truth_set: std::collections::HashSet<u32> = t.iter().copied().collect();
        let found = res.ids.iter().filter(|id| truth_set.contains(id)).count();
        acc += found as f64 / t.len() as f64;
    }
    acc / results.len() as f64
}

/// Build one [`HashTable`] per model in parallel (index-construction path
/// for multi-table deployments).
pub fn build_tables_parallel(
    models: &[&dyn HashModel],
    data: &[f32],
    dim: usize,
    threads: usize,
) -> Vec<HashTable> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || models.len() == 1 {
        return models
            .iter()
            .map(|m| HashTable::build(*m, data, dim))
            .collect();
    }
    let mut tables: Vec<Option<HashTable>> = (0..models.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (model, slot) in models.iter().zip(tables.iter_mut()) {
            scope.spawn(move || {
                *slot = Some(HashTable::build(*model, data, dim));
            });
        }
    });
    tables
        .into_iter()
        .map(|t| t.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ProbeStrategy;
    use gqr_l2h::pcah::Pcah;

    fn grid() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.push((i % 20) as f32);
            data.push((i / 20) as f32 + ((i % 3) as f32) * 0.01);
        }
        data
    }

    #[test]
    fn parallel_matches_serial() {
        let data = grid();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let table: HashTable = HashTable::build(&model, &data, 2);
        let engine = QueryEngine::new(&model, &table, &data, 2);
        let queries: Vec<Vec<f32>> = (0..30)
            .map(|i| vec![(i % 19) as f32 + 0.3, (i / 2) as f32])
            .collect();
        let params = SearchParams {
            k: 5,
            n_candidates: 60,
            strategy: ProbeStrategy::GenerateQdRanking,
            early_stop: false,
            ..Default::default()
        };
        let serial = engine.search_batch(&queries, &params, 1);
        let parallel = engine.search_batch(&queries, &params, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.ranked(), b.ranked());
        }
    }

    #[test]
    fn explicit_executor_matches_serial() {
        let data = grid();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let table: HashTable = HashTable::build(&model, &data, 2);
        let engine = QueryEngine::new(&model, &table, &data, 2);
        let queries: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 19) as f32 + 0.1, (i % 13) as f32])
            .collect();
        let params = SearchParams {
            k: 3,
            n_candidates: 50,
            ..Default::default()
        };
        let exec = Executor::builder().workers(3).build();
        let serial = engine.search_batch(&queries, &params, 1);
        let pooled = engine.search_batch_on(&exec, &queries, &params);
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.ranked(), b.ranked());
        }
    }

    #[test]
    fn batch_recall_aggregates() {
        let data = grid();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let table: HashTable = HashTable::build(&model, &data, 2);
        let engine = QueryEngine::new(&model, &table, &data, 2);
        let queries: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let truth = vec![vec![0u32], vec![105u32]];
        let params = SearchParams {
            k: 1,
            n_candidates: usize::MAX,
            ..Default::default()
        };
        let results = engine.search_batch(&queries, &params, 2);
        let r = batch_recall(&results, &truth);
        assert!(r > 0.49, "at least one exact hit expected, got {r}");
    }

    #[test]
    fn parallel_table_builds_match() {
        let data = grid();
        let m1 = Pcah::train(&data, 2, 2).unwrap();
        let m2 = Pcah::train(&data, 2, 1).unwrap();
        let models: Vec<&dyn gqr_l2h::HashModel> = vec![&m1, &m2];
        let serial = build_tables_parallel(&models, &data, 2, 1);
        let parallel = build_tables_parallel(&models, &data, 2, 2);
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.n_buckets(), b.n_buckets());
            assert_eq!(a.n_items(), b.n_items());
        }
    }

    #[test]
    fn empty_batch() {
        let data = grid();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let table: HashTable = HashTable::build(&model, &data, 2);
        let engine = QueryEngine::new(&model, &table, &data, 2);
        let out = engine.search_batch(&[], &SearchParams::default(), 4);
        assert!(out.is_empty());
        assert_eq!(batch_recall(&[], &[]), 1.0);
        let exec = Executor::builder().workers(1).build();
        assert!(engine
            .search_batch_on(&exec, &[], &SearchParams::default())
            .is_empty());
    }
}
