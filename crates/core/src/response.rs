//! The first-class search response: what every [`Index`](crate::index::Index)
//! returns and what the serving wire layer serializes.
//!
//! Earlier revisions returned an ad-hoc `Vec<(u32, f32)>`-plus-stats struct
//! that the CLI, batch layer, and examples each unpacked differently.
//! [`SearchResponse`] replaces it with a columnar shape — `ids[i]` pairs
//! with `distances[i]` — which is both what JSON clients want on the wire
//! and what recall evaluation wants in memory (id sets without touching
//! distances). The per-query [`ProbeStats`], any requested mid-search
//! [`Checkpoint`]s, and the trace id (when the query was sampled) ride
//! along so a serving front end can return observability handles to the
//! caller.

use crate::stats::ProbeStats;
use std::time::Duration;

/// Result of one search: the ranked neighbors in columnar form plus the
/// per-query instrumentation.
///
/// Invariant: `ids.len() == distances.len() ≤ k`, jointly ascending by
/// distance. Use [`neighbors`](SearchResponse::neighbors) to iterate pairs
/// or [`ranked`](SearchResponse::ranked) to materialize them.
#[derive(Clone, Debug, Default)]
pub struct SearchResponse {
    /// Neighbor item ids, ascending by distance.
    pub ids: Vec<u32>,
    /// Squared (or metric-specific) distances, parallel to `ids`.
    pub distances: Vec<f32>,
    /// Probe instrumentation for this query.
    pub stats: ProbeStats,
    /// Mid-search snapshots, one per budget the request asked for via
    /// [`SearchRequest::checkpoints`](crate::request::SearchRequest::checkpoints);
    /// empty otherwise.
    pub checkpoints: Vec<Checkpoint>,
    /// Trace id when this query was sampled (or opted in) by an enabled
    /// tracing registry; `None` otherwise. Clients can quote it back to
    /// correlate with `trace-dump` output.
    pub trace_id: Option<u64>,
    /// Recall@k the calibration model predicted for this result, when the
    /// search ran under a [`recall_target`](crate::engine::SearchParams::recall_target)
    /// and the engine had a calibrated [`RecallModel`](crate::recall::RecallModel)
    /// covering the strategy; `None` otherwise. Compare against measured
    /// recall to audit the SLA (`gqr-bench`'s recall bench does exactly
    /// that).
    pub predicted_recall: Option<f32>,
}

impl SearchResponse {
    /// Build a response from ranked `(id, distance)` pairs (ascending by
    /// distance, as produced by the top-k heap) and the probe stats.
    pub fn from_ranked(neighbors: Vec<(u32, f32)>, stats: ProbeStats) -> SearchResponse {
        let mut ids = Vec::with_capacity(neighbors.len());
        let mut distances = Vec::with_capacity(neighbors.len());
        for (id, d) in neighbors {
            ids.push(id);
            distances.push(d);
        }
        SearchResponse {
            ids,
            distances,
            stats,
            checkpoints: Vec::new(),
            trace_id: None,
            predicted_recall: None,
        }
    }

    /// Number of neighbors returned (≤ the requested k).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no neighbor was found.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterate `(id, distance)` pairs, ascending by distance.
    pub fn neighbors(&self) -> impl ExactSizeIterator<Item = (u32, f32)> + '_ {
        self.ids.iter().copied().zip(self.distances.iter().copied())
    }

    /// Materialize the ranked `(id, distance)` pairs.
    pub fn ranked(&self) -> Vec<(u32, f32)> {
        self.neighbors().collect()
    }

    /// The closest neighbor, if any.
    pub fn nearest(&self) -> Option<(u32, f32)> {
        self.neighbors().next()
    }
}

/// State of the running top-k recorded mid-search (drives recall–time and
/// recall–items curves without re-running the search per budget).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Candidate budget this checkpoint corresponds to.
    pub budget: usize,
    /// Items actually evaluated when the checkpoint fired (≥ budget unless
    /// the table ran out).
    pub items_evaluated: usize,
    /// Buckets probed so far.
    pub buckets_probed: usize,
    /// Wall-clock time since the search started (includes the prober's
    /// upfront sorting, so HR/QR's slow start is visible here).
    pub elapsed: Duration,
    /// Unordered ids of the current top-k.
    pub top_ids: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ranked_splits_columns_in_order() {
        let res =
            SearchResponse::from_ranked(vec![(7, 0.5), (2, 1.25), (9, 4.0)], ProbeStats::default());
        assert_eq!(res.ids, vec![7, 2, 9]);
        assert_eq!(res.distances, vec![0.5, 1.25, 4.0]);
        assert_eq!(res.len(), 3);
        assert!(!res.is_empty());
        assert_eq!(res.nearest(), Some((7, 0.5)));
        assert_eq!(res.ranked(), vec![(7, 0.5), (2, 1.25), (9, 4.0)]);
        assert_eq!(res.trace_id, None);
        assert!(res.checkpoints.is_empty());
    }

    #[test]
    fn empty_response_is_well_formed() {
        let res = SearchResponse::default();
        assert!(res.is_empty());
        assert_eq!(res.len(), 0);
        assert_eq!(res.nearest(), None);
        assert_eq!(res.neighbors().len(), 0);
    }
}
