//! The four stopping criteria of §4.2 compose: candidate budget, bucket
//! budget, wall-clock deadline, and the Theorem-2 early stop.

use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use std::time::Duration;

fn fixture() -> (Vec<f32>, Lsh, HashTable) {
    let mut data = Vec::new();
    for i in 0..3000u32 {
        data.push((i % 50) as f32 + 0.001 * (i % 7) as f32);
        data.push((i / 50) as f32);
    }
    let model = Lsh::train(&data, 2, 10, 3).unwrap();
    let table: HashTable = HashTable::build(&model, &data, 2);
    (data, model, table)
}

#[test]
fn max_buckets_caps_probing() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    for cap in [1usize, 5, 50] {
        let params = SearchParams {
            k: 5,
            n_candidates: usize::MAX,
            strategy: ProbeStrategy::GenerateQdRanking,
            max_buckets: Some(cap),
            ..Default::default()
        };
        let res = engine.search(&[25.0, 30.0], &params);
        assert!(
            res.stats.buckets_probed <= cap,
            "cap {cap}: probed {}",
            res.stats.buckets_probed
        );
    }
}

#[test]
fn time_limit_zero_stops_after_at_most_one_bucket() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let params = SearchParams {
        k: 5,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        time_limit: Some(Duration::ZERO),
        ..Default::default()
    };
    let res = engine.search(&[25.0, 30.0], &params);
    // The deadline is checked before each bucket; with a zero deadline the
    // loop exits immediately.
    assert_eq!(res.stats.buckets_probed, 0);
    assert!(res.is_empty());
}

#[test]
fn generous_limits_do_not_change_results() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let base = SearchParams {
        k: 5,
        n_candidates: 500,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    let limited = SearchParams {
        max_buckets: Some(usize::MAX),
        time_limit: Some(Duration::from_secs(3600)),
        ..base
    };
    let q = [10.0f32, 12.0];
    assert_eq!(
        engine.search(&q, &base).ranked(),
        engine.search(&q, &limited).ranked()
    );
}

#[test]
fn whichever_criterion_fires_first_wins() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    // Bucket cap far tighter than candidate budget.
    let params = SearchParams {
        k: 5,
        n_candidates: 10_000,
        strategy: ProbeStrategy::GenerateHammingRanking,
        max_buckets: Some(3),
        ..Default::default()
    };
    let res = engine.search(&[0.0, 0.0], &params);
    assert!(res.stats.buckets_probed <= 3);
    assert!(res.stats.items_evaluated < 10_000);
}
