//! Structured-predicate equivalence: whatever arm the planner picks
//! (brute-force over the survivor bitmap, bitmap pre-filter, or row-level
//! post-filter), the response must be bit-identical to the closure
//! post-filter escape hatch running `store.matches` per row — same ids,
//! same distances, same order — across every probe strategy and code
//! width. The closure arm is the trivially-correct oracle, so this pins
//! the zero-false-negative contract end to end.

use gqr_core::attrs::{AttrValue, AttributeStore, FilterPlan, Predicate, POSTINGS_MAX_DISTINCT};
use gqr_core::code::CodeWord;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;

const N: usize = 2000;
const DIM: usize = 2;

fn fixture_data() -> Vec<f32> {
    let mut data = Vec::new();
    for i in 0..N as u32 {
        data.push((i % 40) as f32);
        data.push((i / 40) as f32 + 0.001 * (i % 11) as f32);
    }
    data
}

/// Four columns that exercise every index shape: a 2-symbol tag, a
/// low-cardinality int (per-value postings), a high-cardinality int
/// (bloom + min/max only), and a skewed tag whose majority value pushes
/// selectivity past the pre-filter cutoff.
fn fixture_attrs() -> AttributeStore {
    let parity: Vec<&str> = (0..N)
        .map(|i| if i % 2 == 0 { "even" } else { "odd" })
        .collect();
    let bucket: Vec<i64> = (0..N).map(|i| (i % 10) as i64).collect();
    let uid: Vec<i64> = (0..N).map(|i| i as i64 * 7 - 3).collect();
    let heavy: Vec<&str> = (0..N)
        .map(|i| match i % 10 {
            0..=6 => "a",
            7 | 8 => "b",
            _ => "c",
        })
        .collect();
    assert!(
        uid.len() > POSTINGS_MAX_DISTINCT,
        "uid must overflow the postings limit to exercise the bloom path"
    );
    AttributeStore::builder(N)
        .tag_column("parity", parity)
        .unwrap()
        .int_column("bucket", bucket)
        .unwrap()
        .int_column("uid", uid)
        .unwrap()
        .tag_column("heavy", heavy)
        .unwrap()
        .build()
}

/// The predicates under test, with the planner arm each must land on at a
/// 300-candidate budget (None = skip the arm assertion, the plan depends
/// on the budget variant).
fn fixture_predicates() -> Vec<(&'static str, Predicate, Option<&'static str>)> {
    vec![
        (
            "eq-low-card-int (brute arm)",
            Predicate::eq("bucket", AttrValue::Int(3)),
            Some("brute"),
        ),
        (
            "eq-tag-half (pre arm)",
            Predicate::eq("parity", AttrValue::Str("even".into())),
            Some("pre"),
        ),
        (
            "eq-tag-majority (post arm, exact selectivity)",
            Predicate::eq("heavy", AttrValue::Str("a".into())),
            Some("post"),
        ),
        (
            "range-high-card-int (post arm, estimated selectivity)",
            Predicate::range("uid", Some(700), Some(9000)).unwrap(),
            Some("post"),
        ),
        (
            "nested and/or/not",
            Predicate::and(vec![
                Predicate::eq("parity", AttrValue::Str("even".into())),
                Predicate::or(vec![
                    Predicate::is_in("bucket", vec![AttrValue::Int(1), AttrValue::Int(4)]).unwrap(),
                    Predicate::negate(Predicate::eq("heavy", AttrValue::Str("a".into()))),
                ])
                .unwrap(),
            ])
            .unwrap(),
            None,
        ),
        (
            "empty survivor set",
            Predicate::eq("bucket", AttrValue::Int(99)),
            Some("brute"),
        ),
    ]
}

fn strategies() -> Vec<ProbeStrategy> {
    vec![
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::HammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::MultiIndexHashing { blocks: 3 },
    ]
}

/// Run the full strategy × predicate × budget matrix at one code width.
fn check_equivalence_at_width<C: CodeWord>() {
    let data = fixture_data();
    let model = Lsh::train(&data, DIM, 9, 5).unwrap();
    let table: HashTable<C> = HashTable::build(&model, &data, DIM);
    let attrs = fixture_attrs();
    let mut engine = QueryEngine::new(&model, &table, &data, DIM);
    engine.enable_mih(3);
    let engine = engine.with_attrs(&attrs);
    let queries = [[20.0f32, 25.0], [13.0, 29.0], [0.5, 0.5]];

    for strat in strategies() {
        // usize::MAX exhausts every bucket, so even the brute-force arm
        // (which ignores probing entirely) must agree with the oracle;
        // 300 keeps both runs budgeted and pins the pre/post arms.
        for n_candidates in [usize::MAX, 300] {
            let params = SearchParams {
                k: 10,
                n_candidates,
                strategy: strat,
                early_stop: false,
                ..Default::default()
            };
            for (label, pred, _) in fixture_predicates() {
                attrs.validate(&pred).unwrap();
                // Budgeted probe runs and exhaustive brute runs walk rows
                // in different orders, so agreement is only guaranteed
                // when both runs see the whole survivor set.
                let survivors = attrs
                    .exact_bitmap(&pred)
                    .map(|bm| bm.len() as usize)
                    .unwrap_or(usize::MAX);
                if n_candidates < usize::MAX && survivors <= n_candidates {
                    continue;
                }
                for q in &queries {
                    let via_pred =
                        engine.run(SearchRequest::new(q).params(params).predicate(pred.clone()));
                    let via_closure = engine.run(
                        SearchRequest::new(q)
                            .params(params)
                            .filter(|id| attrs.matches(&pred, id)),
                    );
                    assert_eq!(
                        via_pred.ranked(),
                        via_closure.ranked(),
                        "{label}: predicate arm diverged from the closure oracle \
                         ({} bits, {}, budget {n_candidates})",
                        C::BITS,
                        strat.name(),
                    );
                    // Zero false negatives, re-checked row by row.
                    assert!(
                        via_pred.ids.iter().all(|&id| attrs.matches(&pred, id)),
                        "{label}: a non-matching id leaked through"
                    );
                }
            }
        }
    }
}

#[test]
fn predicate_arms_match_closure_oracle_32bit() {
    check_equivalence_at_width::<u32>();
}

#[test]
fn predicate_arms_match_closure_oracle_64bit() {
    check_equivalence_at_width::<u64>();
}

#[test]
fn predicate_arms_match_closure_oracle_128bit() {
    check_equivalence_at_width::<u128>();
}

/// The fixture predicates land on the planner arms the matrix above
/// assumes (documented in `fixture_predicates`).
#[test]
fn planner_picks_the_documented_arms() {
    let attrs = fixture_attrs();
    for (label, pred, expect) in fixture_predicates() {
        let Some(expect) = expect else { continue };
        let choice = attrs.plan(&pred, 300);
        let got = match choice.plan {
            FilterPlan::BruteForce { .. } => "brute",
            FilterPlan::PreFilter { .. } => "pre",
            FilterPlan::PostFilter => "post",
        };
        assert_eq!(got, expect, "{label}: unexpected planner arm");
        assert!(
            (0.0..=1.0).contains(&choice.selectivity),
            "{label}: selectivity out of range: {}",
            choice.selectivity
        );
    }
}

/// A predicate combined with a closure applies BOTH gates, whatever arm
/// the planner picks.
#[test]
fn predicate_and_closure_compose() {
    let data = fixture_data();
    let model = Lsh::train(&data, DIM, 9, 5).unwrap();
    let table: HashTable = HashTable::build(&model, &data, DIM);
    let attrs = fixture_attrs();
    let engine = QueryEngine::new(&model, &table, &data, DIM).with_attrs(&attrs);
    let params = SearchParams {
        k: 10,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    let pred = Predicate::eq("parity", AttrValue::Str("even".into()));
    let res = engine.run(
        SearchRequest::new(&[20.0, 25.0])
            .params(params)
            .predicate(pred.clone())
            .filter(|id| id % 3 == 0),
    );
    assert!(!res.is_empty());
    assert!(res.ids.iter().all(|&id| id % 2 == 0 && id % 3 == 0));
}

mod zero_false_negatives {
    use super::*;
    use gqr_core::attrs::Bloom;
    use proptest::prelude::*;

    /// A store over arbitrary low-cardinality columns; every exact bitmap
    /// the planner could use must agree row-for-row with `matches`.
    fn arb_store_and_pred() -> impl Strategy<Value = (AttributeStore, Predicate)> {
        let cols = (
            prop::collection::vec(0i64..20, 30..300),
            prop::collection::vec(0usize..4usize, 30..300),
        );
        (cols, 0i64..25, 0usize..5usize, 0u8..2).prop_map(
            |((ints, tag_picks), probe_int, probe_tag, negate)| {
                let negate = negate == 1;
                let n = ints.len().min(tag_picks.len());
                let tags = ["red", "green", "blue", "gray", "teal"];
                let tag_vals: Vec<&str> = tag_picks[..n].iter().map(|&i| tags[i]).collect();
                let store = AttributeStore::builder(n)
                    .int_column("x", ints[..n].to_vec())
                    .unwrap()
                    .tag_column("t", tag_vals)
                    .unwrap()
                    .build();
                let leaf = if probe_int % 2 == 0 {
                    Predicate::eq("x", AttrValue::Int(probe_int))
                } else {
                    Predicate::and(vec![
                        Predicate::range("x", Some(probe_int - 7), Some(probe_int + 4)).unwrap(),
                        Predicate::eq("t", AttrValue::Str(tags[probe_tag].into())),
                    ])
                    .unwrap()
                };
                let pred = if negate {
                    Predicate::negate(leaf)
                } else {
                    leaf
                };
                (store, pred)
            },
        )
    }

    proptest! {
        /// The survivor bitmap is ground truth: zero false negatives AND
        /// zero false positives against per-row evaluation.
        #[test]
        fn exact_bitmap_agrees_with_row_eval((store, pred) in arb_store_and_pred()) {
            prop_assume!(store.validate(&pred).is_ok());
            if let Some(bm) = store.exact_bitmap(&pred) {
                for id in 0..store.n_items() as u32 {
                    prop_assert_eq!(
                        bm.contains(id),
                        store.matches(&pred, id),
                        "row {} disagrees with the survivor bitmap", id
                    );
                }
            }
            let s = store.selectivity(&pred);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// High-cardinality columns route Eq through the bloom filter; a
        /// definite miss may prune, a hit must never drop a matching row.
        #[test]
        fn bloom_backed_eq_never_drops_a_match(
            base in -1_000_000i64..1_000_000,
            step in 1i64..50,
            probe_idx in 0usize..1500,
        ) {
            let n = POSTINGS_MAX_DISTINCT + 200;
            let vals: Vec<i64> = (0..n as i64).map(|i| base + i * step).collect();
            let store = AttributeStore::builder(n)
                .int_column("uid", vals.clone())
                .unwrap()
                .build();
            let probe = vals[probe_idx % n];
            let pred = Predicate::eq("uid", AttrValue::Int(probe));
            // The bloom can only prove absence; the probe value is
            // present, so an exact answer here would be a false negative.
            // (`None` falls back to a row scan: trivially exact.)
            if let Some(bm) = store.exact_bitmap(&pred) {
                for id in 0..n as u32 {
                    prop_assert_eq!(bm.contains(id), store.matches(&pred, id));
                }
            }
            prop_assert!(store.matches(&pred, (probe_idx % n) as u32));
        }

        /// The raw bloom primitive: everything inserted is contained.
        #[test]
        fn bloom_primitive_has_no_false_negatives(
            keys in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 1..400),
        ) {
            let mut bloom = Bloom::with_capacity(keys.len());
            for &k in &keys {
                bloom.insert(Bloom::hash_int(k));
            }
            for &k in &keys {
                prop_assert!(bloom.contains(Bloom::hash_int(k)));
            }
        }
    }
}
