//! The code-width generalization's headline suite:
//!
//! * **Cross-width equivalence** — every probe strategy returns bit-identical
//!   top-k (same ids, same f32 distance bit patterns) at m ∈ {16, 32, 64}
//!   no matter which wide-enough `CodeWord` backs the table.
//! * **Popcount oracle** — `CodeWord::hamming` at every width agrees with a
//!   brute-force u8-bitvec loop that never touches `count_ones`.
//! * **Wide-code search oracle** — all five strategies recover the exact
//!   Euclidean k-NN at m ∈ {96, 128, 256} on a planted code layout whose
//!   occupied buckets sit within enumerable Hamming radius.
//! * **Golden recall pins** — budget-limited recall at m = 128 is pinned to
//!   the exact value the deterministic pipeline produces today.

use gqr_core::code::{CodeWord, U192, U256};
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use gqr_l2h::{CodeBlocks, HashModel, QueryEncoding, WideQueryEncoding};

/// Deterministic xorshift stream, same sequence on every platform.
fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut next = rng_stream(seed);
    (0..n * dim)
        .map(|_| (next() % 2_000) as f32 / 100.0 - 10.0)
        .collect()
}

/// Exhaustive scan with the engine's own distance kernel. Using
/// `sq_dist_f32` (not a naive re-sum, which rounds differently) keeps the
/// comparison about *which neighbors the probe strategies select*, so the
/// `to_bits` equality below is exact rather than epsilon-based.
fn brute_force_topk(data: &[f32], dim: usize, q: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut all: Vec<(u32, f32)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| (i as u32, gqr_linalg::kernels::sq_dist_f32(row, q)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// All five strategies; MIH uses `blocks` substrings.
fn strategies(blocks: usize) -> [ProbeStrategy; 5] {
    [
        ProbeStrategy::HammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::MultiIndexHashing { blocks },
    ]
}

/// Run every strategy over every query at one width; distances are captured
/// as raw bit patterns so the cross-width comparison is exact, not
/// approximate.
#[allow(clippy::too_many_arguments)]
fn run_all_strategies<C: CodeWord>(
    model: &dyn HashModel,
    data: &[f32],
    dim: usize,
    queries: &[Vec<f32>],
    k: usize,
    candidates: usize,
    max_buckets: usize,
    mih_blocks: usize,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    let table: HashTable<C> = HashTable::build(model, data, dim);
    let mut engine = QueryEngine::new(model, &table, data, dim);
    engine.enable_mih(mih_blocks);
    let mut out = Vec::new();
    for strat in strategies(mih_blocks) {
        let params = SearchParams::for_k(k)
            .candidates(candidates)
            .max_buckets(max_buckets)
            .strategy(strat)
            .build()
            .unwrap();
        for q in queries {
            let res = engine.search(q, &params);
            out.push((
                res.ids.clone(),
                res.distances.iter().map(|d| d.to_bits()).collect(),
            ));
        }
    }
    out
}

#[test]
fn every_strategy_is_bit_identical_across_wide_enough_widths() {
    let dim = 8;
    let n = 200;
    let data = random_data(n, dim, 11);
    let mut next = rng_stream(99);
    let queries: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            let row = &data[(i * 17 % n) * dim..(i * 17 % n) * dim + dim];
            row.iter()
                .map(|&x| x + (next() % 100) as f32 / 400.0)
                .collect()
        })
        .collect();

    for m in [16usize, 32, 64] {
        let model = Lsh::train(&data, dim, m, 5).unwrap();
        // Keep MIH substrings at ≤ 16 bits: with only 200 random codes a
        // wider substring space would make the searcher enumerate masks
        // far past anything occupied before giving up.
        let mih_blocks = (m / 16).max(2);
        let run = |bits: usize| match bits {
            32 => run_all_strategies::<u32>(&model, &data, dim, &queries, 10, 60, 400, mih_blocks),
            64 => run_all_strategies::<u64>(&model, &data, dim, &queries, 10, 60, 400, mih_blocks),
            128 => {
                run_all_strategies::<u128>(&model, &data, dim, &queries, 10, 60, 400, mih_blocks)
            }
            192 => {
                run_all_strategies::<U192>(&model, &data, dim, &queries, 10, 60, 400, mih_blocks)
            }
            256 => {
                run_all_strategies::<U256>(&model, &data, dim, &queries, 10, 60, 400, mih_blocks)
            }
            _ => unreachable!(),
        };
        let baseline = run(64);
        assert!(
            baseline.iter().any(|(ids, _)| !ids.is_empty()),
            "m = {m}: baseline found nothing; the fixture is too weak"
        );
        for bits in [32usize, 128, 192, 256] {
            if bits < m {
                continue;
            }
            let got = run(bits);
            assert_eq!(
                baseline, got,
                "m = {m}: {bits}-bit words diverge from the 64-bit baseline"
            );
        }
    }
}

/// Naive u8-bitvec Hamming distance: expand both codes to little-endian
/// bytes and count differing bits one at a time. Deliberately the dumbest
/// possible implementation — no `count_ones`, no word-level tricks — so it
/// cannot share a bug with the kernels under test.
fn oracle_hamming(a: &[u64], b: &[u64], m: usize) -> u32 {
    let to_bytes = |blocks: &[u64]| -> Vec<u8> {
        let mut v = Vec::new();
        for &w in blocks {
            v.extend_from_slice(&w.to_le_bytes());
        }
        v
    };
    let (ab, bb) = (to_bytes(a), to_bytes(b));
    let mut dist = 0u32;
    for i in 0..m {
        let (byte, bit) = (i / 8, i % 8);
        let x = ab.get(byte).copied().unwrap_or(0) >> bit & 1;
        let y = bb.get(byte).copied().unwrap_or(0) >> bit & 1;
        if x != y {
            dist += 1;
        }
    }
    dist
}

fn random_wide_code(next: &mut impl FnMut() -> u64, m: usize) -> Vec<u64> {
    (0..m.div_ceil(64))
        .map(|blk| {
            let live = (m - blk * 64).min(64);
            let mask = if live == 64 {
                u64::MAX
            } else {
                (1 << live) - 1
            };
            next() & mask
        })
        .collect()
}

fn check_popcount_oracle<C: CodeWord>(m: usize) {
    let mut next = rng_stream(m as u64);
    let codes: Vec<Vec<u64>> = (0..60).map(|_| random_wide_code(&mut next, m)).collect();
    for (i, a) in codes.iter().enumerate() {
        let ca = C::from_blocks(a);
        assert_eq!(
            ca.popcount(),
            oracle_hamming(a, &[], m),
            "popcount at m = {m}"
        );
        for b in codes.iter().skip(i) {
            let cb = C::from_blocks(b);
            let expected = oracle_hamming(a, b, m);
            assert_eq!(
                C::hamming(ca, cb),
                expected,
                "{}-bit hamming disagrees with the bitvec oracle at m = {m}",
                C::BITS
            );
            assert_eq!(C::hamming(cb, ca), expected, "hamming must be symmetric");
        }
    }
}

#[test]
fn codeword_hamming_matches_the_u8_bitvec_oracle() {
    check_popcount_oracle::<u128>(96);
    check_popcount_oracle::<u128>(128);
    check_popcount_oracle::<U192>(96);
    check_popcount_oracle::<U192>(128);
    check_popcount_oracle::<U192>(192);
    check_popcount_oracle::<U256>(96);
    check_popcount_oracle::<U256>(128);
    check_popcount_oracle::<U256>(256);
}

/// A hash model with a planted code layout: row `i`'s code is `base`
/// XOR-ed with at most one low-cost flip bit, so every occupied bucket
/// sits within Hamming radius 2 of every query (query flip + item flip)
/// and the generate-to-probe strategies can enumerate the whole occupied
/// set — radius-2 at m = 256 is 1 + 256 + C(256, 2) ≈ 33k buckets, well
/// inside the test's bucket cap, where radius 4 would be ~174M. Flip
/// costs are small on the planted bits and large elsewhere, keeping GQR's
/// best-first frontier tiny. Bits are planted in every 64-bit block so the
/// high blocks of wide words are exercised, not just block 0.
struct PlantedModel {
    dim: usize,
    m: usize,
    codes: Vec<CodeBlocks>,
    cheap_bits: Vec<usize>,
}

impl PlantedModel {
    fn new(dim: usize, m: usize, n: usize) -> PlantedModel {
        assert!(m > 64, "planted fixture targets wide codes");
        let n_blocks = m.div_ceil(64);
        // One candidate flip bit per block plus one extra in the top block.
        let cheap_bits: Vec<usize> = (0..n_blocks).map(|b| b * 64 + 7).chain([m - 2]).collect();
        let mut base = CodeBlocks::zero(m);
        // A base pattern with bits in every block.
        for i in (0..m).step_by(5) {
            if !cheap_bits.contains(&i) {
                base.set_bit(i);
            }
        }
        let mut next = rng_stream(m as u64 ^ 0xABCD);
        let codes = (0..n)
            .map(|_| {
                let mut c = base;
                // At most ONE planted flip per item, always setting a bit
                // the base leaves clear: any two codes then differ in at
                // most two bits, so every occupied bucket is reachable at
                // enumeration radius 2 from any query.
                if next() % 2 == 1 {
                    c.set_bit(cheap_bits[(next() % cheap_bits.len() as u64) as usize]);
                }
                c
            })
            .collect();
        PlantedModel {
            dim,
            m,
            codes,
            cheap_bits,
        }
    }

    fn row_index(&self, x: &[f32]) -> usize {
        // Row vectors carry their index in component 0 (see planted_data).
        x[0].round() as usize % self.codes.len()
    }
}

impl HashModel for PlantedModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn code_length(&self) -> usize {
        self.m
    }

    fn encode(&self, _x: &[f32]) -> u64 {
        panic!("planted model is wide-only; use encode_wide")
    }

    fn encode_query(&self, _q: &[f32]) -> QueryEncoding {
        panic!("planted model is wide-only; use encode_query_wide")
    }

    fn encode_wide(&self, x: &[f32]) -> CodeBlocks {
        self.codes[self.row_index(x)]
    }

    fn encode_query_wide(&self, q: &[f32]) -> WideQueryEncoding {
        let mut flip_costs = vec![10.0; self.m];
        for &b in &self.cheap_bits {
            flip_costs[b] = 0.25 + b as f64 * 1e-3;
        }
        QueryEncoding {
            code: self.encode_wide(q),
            flip_costs,
        }
    }

    fn name(&self) -> &'static str {
        "planted"
    }
}

/// Rows whose component 0 is the row index (the planted model's key) and
/// whose remaining components are deterministic pseudo-random noise, so
/// Euclidean distances are distinct and brute force has a unique answer.
fn planted_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut next = rng_stream(seed);
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        data.push(i as f32);
        for _ in 1..dim {
            data.push((next() % 1_000) as f32 / 50.0);
        }
    }
    data
}

#[test]
fn all_five_strategies_pass_the_brute_force_oracle_at_wide_widths() {
    let dim = 6;
    let n = 40;
    let k = 5;
    for (m, mih_blocks) in [(96usize, 2usize), (128, 2), (256, 4)] {
        let model = PlantedModel::new(dim, m, n);
        let data = planted_data(n, dim, m as u64);

        // The planted layout must stay within enumeration reach, and its
        // pairwise distances must agree with the bitvec oracle.
        for a in &model.codes {
            for b in &model.codes {
                let d = oracle_hamming(a.blocks(), b.blocks(), m);
                assert!(d <= 2, "planted codes drifted out of radius (d = {d})");
                let (ca, cb) = (U256::from_blocks(a.blocks()), U256::from_blocks(b.blocks()));
                assert_eq!(U256::hamming(ca, cb), d);
            }
        }

        let run = |strat: ProbeStrategy, query: &[f32]| -> Vec<(u32, u32)> {
            let table: HashTable<U256> = HashTable::build(&model, &data, dim);
            let mut engine = QueryEngine::new(&model, &table, &data, dim);
            engine.enable_mih(mih_blocks);
            // The bucket cap and time limit are safety nets: a correct run
            // stays within radius 2 (≤ 33k generated buckets at m = 256),
            // so hitting either means the enumeration went off the planted
            // layout — the result then fails the oracle assert instead of
            // hanging the suite.
            let params = SearchParams::for_k(k)
                .candidates(n)
                .max_buckets(40_000)
                .time_limit(std::time::Duration::from_secs(30))
                .build()
                .unwrap();
            let params = SearchParams {
                strategy: strat,
                ..params
            };
            engine
                .search(query, &params)
                .neighbors()
                .map(|(id, d)| (id, d.to_bits()))
                .collect()
        };

        for qi in [0usize, 7, n - 1] {
            let query = data[qi * dim..(qi + 1) * dim].to_vec();
            let expected: Vec<(u32, u32)> = brute_force_topk(&data, dim, &query, k)
                .into_iter()
                .map(|(id, d)| (id, d.to_bits()))
                .collect();
            assert_eq!(expected[0].0, qi as u32, "self-query must find itself");
            for strat in strategies(mih_blocks) {
                let got = run(strat, &query);
                assert_eq!(
                    got,
                    expected,
                    "{} diverges from brute force at m = {m}, query {qi}",
                    strat.name()
                );
            }
        }
    }
}

#[test]
fn golden_recall_is_pinned_for_128_bit_codes() {
    // Budget-limited recall of the table-driven strategies on a fully
    // deterministic pipeline (xorshift data, seeded LSH). The pinned values
    // were produced by this exact test; any drift in wide-code encoding,
    // table layout, or ranking shows up as a recall change here before it
    // shows up in a benchmark.
    let dim = 12;
    let n = 400;
    let k = 10;
    let m = 128;
    let data = random_data(n, dim, 31);
    let model = Lsh::train(&data, dim, m, 9).unwrap();
    let table: HashTable<u128> = HashTable::build(&model, &data, dim);
    let engine = QueryEngine::new(&model, &table, &data, dim);

    let queries: Vec<Vec<f32>> = (0..40)
        .map(|i| data[(i * 9 % n) * dim..(i * 9 % n) * dim + dim].to_vec())
        .collect();

    let mut recalls = Vec::new();
    for strat in [ProbeStrategy::HammingRanking, ProbeStrategy::QdRanking] {
        let params = SearchParams::for_k(k)
            .candidates(80)
            .strategy(strat)
            .build()
            .unwrap();
        let mut found = 0usize;
        for q in &queries {
            let truth: Vec<u32> = brute_force_topk(&data, dim, q, k)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            let res = engine.search(q, &params);
            found += res.ids.iter().filter(|id| truth.contains(id)).count();
        }
        recalls.push(found);
    }
    assert_eq!(
        recalls,
        vec![GOLDEN_HR_HITS, GOLDEN_QR_HITS],
        "budget-limited recall drifted (k·queries = {})",
        k * queries.len()
    );
}

/// Pinned hit counts for `golden_recall_is_pinned_for_128_bit_codes`
/// (out of k × 40 queries = 400).
const GOLDEN_HR_HITS: usize = 393;
const GOLDEN_QR_HITS: usize = 397;
