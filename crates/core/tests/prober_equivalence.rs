//! Cross-prober semantics on randomized tables:
//!
//! * GQR ≡ QR (identical QD sequences over occupied buckets),
//! * GHR ≡ HR on occupied buckets (identical radius sequences),
//! * MIH emits the same item set per Hamming level as GHR-driven retrieval.

use gqr_core::code::{hamming, quantization_distance};
use gqr_core::probe::mih::MihIndex;
use gqr_core::probe::{
    GenerateHammingRanking, GenerateQdRanking, HammingRanking, Prober, QdRanking,
};
use gqr_core::table::HashTable;
use gqr_l2h::QueryEncoding;
use proptest::prelude::*;

fn scenario() -> impl Strategy<Value = (usize, Vec<u64>, u64, Vec<f64>)> {
    (4usize..9).prop_flat_map(|m| {
        let span = 1u64 << m;
        (
            Just(m),
            prop::collection::vec(0..span, 5..60),
            0..span,
            prop::collection::vec(0.0f64..3.0, m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn gqr_visits_occupied_buckets_in_qr_order((m, codes, qcode, costs) in scenario()) {
        let table = HashTable::from_codes(m, &codes);
        let q = QueryEncoding { code: qcode, flip_costs: costs };

        let mut qr = QdRanking::new(&table);
        qr.reset(&q);
        let mut qr_seq = Vec::new();
        while let Some(b) = qr.next_bucket() {
            qr_seq.push(quantization_distance(&q, b));
        }

        let mut gqr = GenerateQdRanking::new(m);
        gqr.reset(&q);
        let mut gqr_seq = Vec::new();
        while let Some(b) = gqr.next_bucket() {
            if table.contains(b) {
                gqr_seq.push(quantization_distance(&q, b));
            }
        }
        prop_assert_eq!(qr_seq.len(), gqr_seq.len());
        for (a, b) in qr_seq.iter().zip(&gqr_seq) {
            prop_assert!((a - b).abs() < 1e-9, "QD sequences diverge: {a} vs {b}");
        }
    }

    #[test]
    fn ghr_visits_occupied_buckets_in_hr_order((m, codes, qcode, costs) in scenario()) {
        let table = HashTable::from_codes(m, &codes);
        let q = QueryEncoding { code: qcode, flip_costs: costs };

        let mut hr = HammingRanking::new(&table);
        hr.reset(&q);
        let mut hr_seq = Vec::new();
        while let Some(b) = hr.next_bucket() {
            hr_seq.push(hamming(b, q.code));
        }

        let mut ghr = GenerateHammingRanking::new(m);
        ghr.reset(&q);
        let mut ghr_seq = Vec::new();
        while let Some(b) = ghr.next_bucket() {
            if table.contains(b) {
                ghr_seq.push(hamming(b, q.code));
            }
        }
        prop_assert_eq!(hr_seq, ghr_seq);
    }

    #[test]
    fn mih_levels_match_hamming_distances((m, codes, qcode, _costs) in scenario()) {
        for blocks in [2usize, 3] {
            if blocks > m {
                continue;
            }
            let mih = MihIndex::build(m, &codes, blocks);
            let mut s = mih.search(qcode);
            let mut out = Vec::new();
            let mut seen = vec![false; codes.len()];
            let mut last_level = -1i64;
            while let Some(level) = s.next_batch(&mut out) {
                prop_assert!((level as i64) > last_level);
                last_level = level as i64;
                for &id in &out {
                    prop_assert_eq!(hamming(codes[id as usize], qcode), level);
                    prop_assert!(!seen[id as usize], "item {id} twice");
                    seen[id as usize] = true;
                }
                out.clear();
            }
            prop_assert!(seen.iter().all(|&s| s), "blocks={blocks}: every item must be emitted");
        }
    }

    #[test]
    fn probe_costs_monotone_for_all_probers((m, codes, qcode, costs) in scenario()) {
        let table = HashTable::from_codes(m, &codes);
        let q = QueryEncoding { code: qcode, flip_costs: costs };
        let mut hr = HammingRanking::new(&table);
        let mut qr = QdRanking::new(&table);
        let mut ghr = GenerateHammingRanking::new(m);
        let mut gqr = GenerateQdRanking::new(m);
        let probers: [&mut dyn Prober; 4] = [&mut hr, &mut qr, &mut ghr, &mut gqr];
        for p in probers {
            p.reset(&q);
            let mut last = f64::NEG_INFINITY;
            while let Some(c) = p.peek_cost() {
                prop_assert!(c >= last - 1e-9, "{}: cost regressed", p.name());
                last = c;
                if p.next_bucket().is_none() {
                    break;
                }
            }
        }
    }
}
