//! Sharding is an execution plan, not an approximation: for every probe
//! strategy and shard count, [`ShardedIndex`] must return *bit-identical*
//! neighbors (ids and distances) to the single unsharded engine over the
//! same data when both probe exhaustively.
//!
//! Written as plain `#[test]` loops over shard counts, strategies, and
//! queries rather than a property-test macro so every combination runs on
//! every `cargo test`.

use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::executor::Executor;
use gqr_core::request::SearchRequest;
use gqr_core::shard::ShardedIndex;
use gqr_core::table::HashTable;
use gqr_l2h::pcah::Pcah;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const STRATEGIES: [ProbeStrategy; 5] = [
    ProbeStrategy::HammingRanking,
    ProbeStrategy::GenerateHammingRanking,
    ProbeStrategy::QdRanking,
    ProbeStrategy::GenerateQdRanking,
    ProbeStrategy::MultiIndexHashing { blocks: 2 },
];

/// 403 4-D rows (indivisible by every shard count above) with deterministic
/// jitter so exact distances are informative.
fn dataset() -> (Vec<f32>, usize) {
    let mut data = Vec::new();
    for i in 0..403u32 {
        data.push((i % 20) as f32 + 0.001 * ((i * 7) % 13) as f32);
        data.push((i / 20) as f32);
        data.push(((i * 3) % 11) as f32 * 0.5);
        data.push(((i * 5) % 17) as f32 * 0.25);
    }
    (data, 4)
}

fn queries() -> Vec<Vec<f32>> {
    (0..12)
        .map(|i| {
            vec![
                (i % 19) as f32 + 0.37,
                (i % 15) as f32 + 0.11,
                (i % 9) as f32 * 0.5 + 0.2,
                (i % 13) as f32 * 0.25 + 0.05,
            ]
        })
        .collect()
}

fn exhaustive(strategy: ProbeStrategy) -> SearchParams {
    SearchParams {
        k: 10,
        n_candidates: usize::MAX,
        strategy,
        early_stop: false,
        ..Default::default()
    }
}

#[test]
fn sharded_matches_unsharded_for_all_strategies_and_shard_counts() {
    let (data, dim) = dataset();
    let model = Pcah::train(&data, dim, 4).unwrap();
    let table: HashTable = HashTable::build(&model, &data, dim);
    let mut reference = QueryEngine::new(&model, &table, &data, dim);
    reference.enable_mih(2);

    for s in SHARD_COUNTS {
        let mut index = ShardedIndex::build(&model, &data, dim, s);
        index.enable_mih(2);
        assert_eq!(index.n_shards(), s);
        assert_eq!(index.n_items(), 403);
        for strategy in STRATEGIES {
            let params = exhaustive(strategy);
            for q in queries() {
                let want = reference.search(&q, &params);
                let got = index.search(&q, &params);
                assert_eq!(
                    got.ranked(),
                    want.ranked(),
                    "S={s} strategy={} q={q:?}",
                    strategy.name()
                );
                assert_eq!(
                    got.stats.items_evaluated, 403,
                    "exhaustive probing evaluates every item across shards"
                );
            }
        }
    }
}

#[test]
fn executor_fanout_matches_serial_sharded_path() {
    let (data, dim) = dataset();
    let model = Pcah::train(&data, dim, 4).unwrap();
    let exec = Executor::builder().workers(4).build();

    for s in SHARD_COUNTS {
        let mut index = ShardedIndex::build(&model, &data, dim, s);
        index.enable_mih(2);
        for strategy in STRATEGIES {
            let params = exhaustive(strategy);
            for q in queries() {
                let serial = index.search(&q, &params);
                let pooled = index.run_on(&exec, SearchRequest::new(&q).params(params));
                assert_eq!(
                    pooled.ranked(),
                    serial.ranked(),
                    "S={s} strategy={}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn filtered_sharded_matches_filtered_engine() {
    let (data, dim) = dataset();
    let model = Pcah::train(&data, dim, 4).unwrap();
    let table: HashTable = HashTable::build(&model, &data, dim);
    let mut reference = QueryEngine::new(&model, &table, &data, dim);
    reference.enable_mih(2);
    let accept = |id: u32| id.is_multiple_of(3);

    for s in SHARD_COUNTS {
        let mut index = ShardedIndex::build(&model, &data, dim, s);
        index.enable_mih(2);
        for strategy in &STRATEGIES {
            let params = exhaustive(*strategy);
            for q in queries().into_iter().take(4) {
                let want = reference.run(SearchRequest::new(&q).params(params).filter(accept));
                let got = index.run(SearchRequest::new(&q).params(params).filter(accept));
                assert_eq!(
                    got.ranked(),
                    want.ranked(),
                    "S={s} strategy={}",
                    strategy.name()
                );
                assert!(got.ids.iter().all(|&id| accept(id)));
            }
        }
    }
}

#[test]
fn tight_budgets_still_return_full_result_sets() {
    // Under a finite per-shard budget the sharded result need not match the
    // unsharded engine bucket-for-bucket, but it must still return k
    // well-formed, sorted neighbors.
    let (data, dim) = dataset();
    let model = Pcah::train(&data, dim, 4).unwrap();
    let index = ShardedIndex::build(&model, &data, dim, 3);
    let params = SearchParams {
        k: 10,
        n_candidates: 50,
        ..Default::default()
    };
    for q in queries() {
        let res = index.search(&q, &params);
        assert_eq!(res.len(), 10);
        assert!(
            res.distances.windows(2).all(|w| w[0] <= w[1]),
            "sorted by distance"
        );
        assert!(
            res.stats.items_evaluated >= 50,
            "each shard honors its budget"
        );
    }
}
