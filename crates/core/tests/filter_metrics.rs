//! Name-pinning tests for the filtered-search observability surface.
//!
//! Dashboards and alert rules key on the literal metric names, so a rename
//! is a breaking change: these tests spell out every `gqr_filter_*` name
//! (and label set) the engine emits, one assertion per planner arm, plus
//! the trace markers (`filter_plan`, `filter_skip`) a sampled trace carries.

use gqr_core::attrs::{AttributeStore, Predicate};
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::metrics::{EventData, MarkerKind, MetricsRegistry, TraceConfig};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;

const N: usize = 2000;
const DIM: usize = 2;

fn fixture() -> (Vec<f32>, Lsh, AttributeStore) {
    let mut data = Vec::new();
    for i in 0..N as u32 {
        data.push((i % 40) as f32 + 0.001 * (i % 7) as f32);
        data.push((i / 40) as f32);
    }
    let model = Lsh::train(&data, DIM, 10, 3).unwrap();
    let attrs = AttributeStore::builder(N)
        // 50% selectivity with postings: the pre-filter arm at tight budgets.
        .tag_column(
            "parity",
            (0..N)
                .map(|i| if i % 2 == 0 { "even" } else { "odd" })
                .collect::<Vec<_>>(),
        )
        .unwrap()
        // 10% selectivity with postings: small survivor sets -> brute arm.
        .int_column("bucket", (0..N).map(|i| (i % 10) as i64).collect())
        .unwrap()
        // 2000 distinct values: above the postings cap, bloom-only, so
        // eq() has no exact bitmap and the planner must post-filter.
        .int_column("uid", (0..N).map(|i| i as i64).collect())
        .unwrap()
        .build();
    (data, model, attrs)
}

fn params() -> SearchParams {
    SearchParams {
        k: 5,
        n_candidates: 300,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    }
}

#[test]
fn filter_metric_names_are_pinned_per_arm() {
    let (data, model, attrs) = fixture();
    let table: HashTable = HashTable::build(&model, &data, DIM);
    let metrics = MetricsRegistry::enabled();
    let engine = QueryEngine::new(&model, &table, &data, DIM)
        .with_metrics(metrics.clone())
        .with_attrs(&attrs);
    let query = vec![10.0, 10.0];

    // An unfiltered query must not touch any gqr_filter_* series.
    engine.search(&query, &params());
    for name in metrics.counter_names() {
        assert!(
            !name.starts_with("gqr_filter_"),
            "unfiltered search leaked {name}"
        );
    }
    assert!(!metrics
        .histogram_names()
        .iter()
        .any(|n| n == "gqr_filter_selectivity_ppm"));

    // brute: eq bucket=3 has 200 survivors, under the 300-candidate budget.
    let r = engine.run(
        SearchRequest::new(&query)
            .params(params())
            .predicate(Predicate::eq("bucket", 3i64)),
    );
    assert!(!r.is_empty());
    // pre: eq parity=even has 1000 survivors at selectivity 0.5 — too many
    // to brute-force, exactly at the pre-filter ceiling.
    engine.run(
        SearchRequest::new(&query)
            .params(params())
            .predicate(Predicate::eq("parity", "even")),
    );
    // post: uid is bloom-only (no postings), so no exact survivor set.
    engine.run(
        SearchRequest::new(&query)
            .params(params())
            .predicate(Predicate::eq("uid", 3i64)),
    );

    assert_eq!(
        metrics.counter_value("gqr_filter_plans_total{plan=\"brute\"}"),
        Some(1)
    );
    assert_eq!(
        metrics.counter_value("gqr_filter_plans_total{plan=\"pre\"}"),
        Some(1)
    );
    assert_eq!(
        metrics.counter_value("gqr_filter_plans_total{plan=\"post\"}"),
        Some(1)
    );
    let hist = metrics
        .histogram("gqr_filter_selectivity_ppm")
        .expect("selectivity histogram must exist under its pinned name");
    assert_eq!(hist.count(), 3, "one selectivity sample per filtered query");

    // The post-filter query above matched a single row out of 2000: every
    // other probed bucket was rejected wholesale and must be counted.
    let skipped = metrics
        .counter_value("gqr_filter_buckets_skipped_total")
        .expect("buckets-skipped counter must exist under its pinned name");
    assert!(skipped > 0, "a 1-in-2000 filter must skip whole buckets");
}

#[test]
fn filtered_query_trace_carries_plan_and_skip_markers() {
    let (data, model, attrs) = fixture();
    let table: HashTable = HashTable::build(&model, &data, DIM);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: u64::MAX,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data, DIM)
        .with_metrics(metrics.clone())
        .with_attrs(&attrs);
    let query = vec![10.0, 10.0];
    engine.search(&query, &params()); // burn ordinal 0 (always sampled)
    let res = engine.run(
        SearchRequest::new(&query)
            .params(params())
            .predicate(Predicate::eq("uid", 3i64))
            .trace(),
    );
    assert_eq!(res.ids, vec![3], "only row 3 survives eq(uid, 3)");

    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    let traces = store.recent();
    let t = traces.last().expect("opt-in trace must be recorded");
    t.check_well_formed().unwrap();
    let has = |kind: MarkerKind| {
        t.events
            .iter()
            .any(|e| matches!(&e.data, EventData::Marker { kind: k, .. } if *k == kind))
    };
    assert!(has(MarkerKind::FilterPlan), "filter_plan marker missing");
    assert!(
        has(MarkerKind::FilterSkip),
        "filter_skip marker missing: a 1-in-2000 filter skips buckets"
    );
}
