//! Edge tests for blocked (tiled) candidate evaluation: ragged tiles from
//! filtered search, buckets smaller than one tile, dimensions that are not a
//! multiple of the SIMD width, and invariance of results under the scratch
//! tile shape. Results must be *bit-identical* across tile shapes because
//! the batch kernel is bit-identical to the row kernel under the same
//! dispatched implementation.

use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::pcah::Pcah;
use gqr_linalg::kernels::ScoreBlock;
use gqr_linalg::vecops::sq_dist_f32;

/// Deterministic splitmix64 stream in `[-1, 1)`.
struct Gen(u64);

impl Gen {
    fn next_f32(&mut self) -> f32 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
    }
}

fn dataset(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut g = Gen(seed);
    (0..n * dim).map(|_| 3.0 * g.next_f32()).collect()
}

fn bucket_strategies() -> [ProbeStrategy; 4] {
    [
        ProbeStrategy::HammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::GenerateQdRanking,
    ]
}

/// Exact reference through the same dispatched *row* kernel (so equality
/// with the engine's blocked evaluation is bitwise, not approximate).
fn brute_force(data: &[f32], dim: usize, q: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut d: Vec<(f32, u32)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| (sq_dist_f32(q, row), i as u32))
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d.into_iter().map(|(dist, id)| (id, dist)).collect()
}

/// Dimensions off the SIMD widths (d = 7, 13: below one 8-lane vector, and
/// between one and two) with full budget must match brute force bitwise for
/// every bucket strategy.
#[test]
fn odd_dims_match_brute_force_bitwise() {
    for dim in [7usize, 13] {
        let data = dataset(150, dim, dim as u64);
        let model = Pcah::train(&data, dim, 6).unwrap();
        let table: HashTable = HashTable::build(&model, &data, dim);
        let engine = QueryEngine::new(&model, &table, &data, dim);
        let q: Vec<f32> = data[..dim].iter().map(|&x| x + 0.05).collect();
        let expect = brute_force(&data, dim, &q, 5);
        for strategy in bucket_strategies() {
            let params = SearchParams {
                k: 5,
                n_candidates: usize::MAX,
                strategy,
                early_stop: false,
                ..Default::default()
            };
            let res = engine.search(&q, &params);
            assert_eq!(
                res.ranked(),
                expect,
                "dim {dim}, {} disagrees with the row kernel",
                strategy.name()
            );
        }
    }
}

/// Results are invariant to the scratch tile shape: every capacity (down to
/// one-row tiles, which flush on every push) must reproduce the default
/// tile's neighbors and stats bit-for-bit.
#[test]
fn scratch_capacity_does_not_change_results() {
    let dim = 13;
    let data = dataset(200, dim, 9);
    let model = Pcah::train(&data, dim, 6).unwrap();
    let table: HashTable = HashTable::build(&model, &data, dim);
    let mut engine = QueryEngine::new(&model, &table, &data, dim);
    engine.enable_mih(2);
    let q: Vec<f32> = data[dim..2 * dim].iter().map(|&x| x + 0.02).collect();

    let all: Vec<ProbeStrategy> = bucket_strategies()
        .into_iter()
        .chain([ProbeStrategy::MultiIndexHashing { blocks: 2 }])
        .collect();
    for strategy in all {
        let params = SearchParams {
            k: 7,
            n_candidates: 120,
            strategy,
            early_stop: false,
            ..Default::default()
        };
        let baseline = engine.search(&q, &params);
        for cap in [1usize, 2, 3, 5, 32, 100] {
            let mut scratch = ScoreBlock::with_rows(dim, cap);
            let res = engine.run_with_scratch(SearchRequest::new(&q).params(params), &mut scratch);
            assert_eq!(
                res.ranked(),
                baseline.ranked(),
                "{} tile capacity {cap} changed the neighbors",
                strategy.name()
            );
            assert_eq!(
                res.stats.items_evaluated,
                baseline.stats.items_evaluated,
                "{} tile capacity {cap} changed evaluation accounting",
                strategy.name()
            );
            assert!(scratch.is_empty(), "scratch must be left drained");
        }
    }
}

/// Filtered search produces ragged tiles (rejected ids never enter the
/// scratch block). Sparse and dense filters must match a filtered brute
/// force bitwise, at every tile capacity.
#[test]
fn filtered_ragged_tiles_match_reference() {
    let dim = 7;
    let data = dataset(180, dim, 3);
    let model = Pcah::train(&data, dim, 6).unwrap();
    let table: HashTable = HashTable::build(&model, &data, dim);
    let engine = QueryEngine::new(&model, &table, &data, dim);
    let q: Vec<f32> = data[..dim].iter().map(|&x| x + 0.01).collect();

    // Sparse (1 in 7 ids survive), modulo (1 in 3), and nearly-dense.
    #[allow(clippy::type_complexity)]
    let filters: [(&str, fn(u32) -> bool); 3] = [
        ("sparse", |id| id % 7 == 0),
        ("thirds", |id| id % 3 != 1),
        ("dense", |id| id != 4),
    ];
    for (label, accept) in filters {
        let mut expect: Vec<(u32, f32)> = data
            .chunks_exact(dim)
            .enumerate()
            .filter(|(i, _)| accept(*i as u32))
            .map(|(i, row)| (i as u32, sq_dist_f32(&q, row)))
            .collect();
        expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        expect.truncate(5);

        for strategy in bucket_strategies() {
            let params = SearchParams {
                k: 5,
                n_candidates: usize::MAX,
                strategy,
                early_stop: false,
                ..Default::default()
            };
            for cap in [1usize, 3, 32] {
                let mut scratch = ScoreBlock::with_rows(dim, cap);
                let res = engine.run_with_scratch(
                    SearchRequest::new(&q).params(params).filter(accept),
                    &mut scratch,
                );
                let mut got = res.ranked();
                got.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                assert_eq!(
                    got,
                    expect,
                    "{} filter '{label}' capacity {cap} disagrees",
                    strategy.name()
                );
                for (id, _) in res.neighbors() {
                    assert!(accept(id), "filtered-out id {id} leaked into results");
                }
            }
        }
    }
}

/// Buckets far smaller than one tile (n = 9 items over many buckets): the
/// per-bucket flush must still evaluate everything and match brute force.
#[test]
fn buckets_smaller_than_a_tile() {
    let dim = 5;
    let data = dataset(9, dim, 17);
    let model = Pcah::train(&data, dim, 4).unwrap();
    let table: HashTable = HashTable::build(&model, &data, dim);
    let engine = QueryEngine::new(&model, &table, &data, dim);
    let q = vec![0.1f32; dim];
    let expect = brute_force(&data, dim, &q, 4);
    for strategy in bucket_strategies() {
        let params = SearchParams {
            k: 4,
            n_candidates: usize::MAX,
            strategy,
            early_stop: false,
            ..Default::default()
        };
        let res = engine.search(&q, &params);
        assert_eq!(res.ranked(), expect, "{}", strategy.name());
        assert_eq!(res.stats.items_evaluated, 9, "{}", strategy.name());
    }
}
