//! Trace-flush regression tests for the early-return paths: a query that
//! misses its deadline, a query against an empty index, and a filter that
//! rejects every candidate must all still land a well-formed span tree in
//! the trace store (no leaked open spans, no dropped traces).

use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::metrics::{EventData, MarkerKind, MetricsRegistry, TraceConfig};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use std::time::Instant;

fn fixture() -> (Vec<f32>, Lsh) {
    let mut data = Vec::new();
    for i in 0..2000u32 {
        data.push((i % 40) as f32 + 0.001 * (i % 7) as f32);
        data.push((i / 40) as f32);
    }
    let model = Lsh::train(&data, 2, 10, 3).unwrap();
    (data, model)
}

#[test]
fn deadline_missed_query_is_force_traced_with_marker() {
    let (data, model) = fixture();
    let table: HashTable = HashTable::build(&model, &data, 2);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: u64::MAX,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data, 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: 200,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    // Burn ordinal 0 (always sampled), then run with an already-expired
    // deadline: admission notices the miss and forces the trace.
    engine.search(&[10.0, 10.0], &params);
    let res = engine.run(
        SearchRequest::new(&[10.0, 10.0])
            .params(params)
            .deadline(Instant::now() - std::time::Duration::from_millis(1)),
    );
    assert!(res.is_empty(), "expired deadline returns empty");
    assert_eq!(
        metrics.counter_value("gqr_request_deadline_missed_total{strategy=\"GQR\"}"),
        Some(1)
    );
    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    let traces = store.all();
    let t = traces
        .iter()
        .find(|t| t.deadline_missed)
        .expect("missed-deadline query must be traced");
    t.check_well_formed().unwrap();
    assert!(t.slow, "deadline misses pin into the slow reservoir");
    assert!(
        t.events.iter().any(|e| matches!(
            e.data,
            EventData::Marker {
                kind: MarkerKind::DeadlineMiss,
                ..
            }
        )),
        "deadline-miss marker missing: {:?}",
        t.events
    );
}

#[test]
fn empty_index_query_records_well_formed_trace() {
    let (data, model) = fixture();
    // A table over zero rows: every probe finds nothing.
    let table: HashTable = HashTable::build(&model, &[], 2);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: 1,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data[..0], 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: 50,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    let res = engine.search(&[10.0, 10.0], &params);
    assert!(res.is_empty());
    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    assert_eq!(store.pushed(), 1, "empty-index query must still flush");
    let traces = store.recent();
    traces[0].check_well_formed().unwrap();
}

#[test]
fn filter_rejecting_everything_keeps_zero_and_flushes() {
    let (data, model) = fixture();
    let table: HashTable = HashTable::build(&model, &data, 2);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: u64::MAX,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data, 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: 100,
        strategy: ProbeStrategy::GenerateQdRanking,
        max_buckets: Some(20),
        ..Default::default()
    };
    engine.search(&[10.0, 10.0], &params); // burn ordinal 0
    let res = engine.run(
        SearchRequest::new(&[10.0, 10.0])
            .params(params)
            .filter(|_| false)
            .trace(),
    );
    assert!(res.is_empty());
    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    assert_eq!(store.pushed(), 2, "opt-in trace must be recorded");
    let traces = store.recent();
    let t = traces.last().unwrap();
    t.check_well_formed().unwrap();
    let mut steps = 0usize;
    for e in &t.events {
        if let EventData::QdStep { kept, .. } = e.data {
            assert_eq!(kept, 0, "filter rejects everything, kept must be 0");
            steps += 1;
        }
    }
    assert!(steps > 0, "probed buckets must emit QD steps");
}

#[test]
fn unsampled_queries_leave_no_trace() {
    let (data, model) = fixture();
    let table: HashTable = HashTable::build(&model, &data, 2);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: u64::MAX,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data, 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: 100,
        ..Default::default()
    };
    engine.search(&[10.0, 10.0], &params); // ordinal 0: sampled
    for _ in 0..10 {
        engine.search(&[10.0, 10.0], &params);
    }
    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    assert_eq!(store.pushed(), 1, "only the ordinal-0 query is sampled");
}

/// A query that overflows the per-trace event cap (tiny `max_events`,
/// generate strategy with an unbounded candidate budget) must still record
/// a well-formed tree: `End`s of spans open at the cap are admitted so no
/// span is left half-open, and the overflow is counted in `events_dropped`.
#[test]
fn event_cap_overflow_keeps_trace_well_formed() {
    let (data, model) = fixture();
    let table: HashTable = HashTable::build(&model, &data, 2);
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: 1,
        max_events: 32,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(&model, &table, &data, 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        early_stop: false,
        max_buckets: Some(500),
        ..Default::default()
    };
    engine.search(&[10.0, 10.0], &params);
    let tracing = metrics.tracing().unwrap();
    let store = tracing.store();
    assert_eq!(store.pushed(), 1);
    let traces = store.recent();
    let t = &traces[0];
    assert!(
        t.events_dropped > 0,
        "this query must overflow a 32-event cap"
    );
    t.check_well_formed().unwrap();
}
