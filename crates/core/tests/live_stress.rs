//! Concurrent mutation stress: one writer churns the index through many
//! epoch swaps (including threshold-triggered compactions) while reader
//! threads continuously pin a generation and query it. Every result must be
//! internally consistent with the *pinned* generation — a reader never sees
//! an id that was dead at its pinned epoch, even while the writer publishes
//! newer epochs underneath it.
//!
//! Iteration count is bounded so CI stays fast; set `GQR_STRESS_ITERS` to
//! run longer locally.

use gqr_core::engine::SearchParams;
use gqr_core::live::MutableIndex;
use gqr_core::request::SearchRequest;
use gqr_l2h::lsh::Lsh;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn iters() -> usize {
    std::env::var("GQR_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

#[test]
fn readers_see_consistent_pinned_generations_during_churn() {
    let mut data = Vec::new();
    for i in 0..600u32 {
        data.push((i % 30) as f32 + 0.001 * ((i * 7) % 13) as f32);
        data.push((i / 30) as f32);
    }
    let model = Arc::new(Lsh::train(&data, 2, 9, 5).unwrap());
    // A small threshold so the stress run crosses several compactions;
    // keep compaction on the writer thread so the test is deterministic in
    // its thread count.
    let index: MutableIndex<_> = MutableIndex::builder(model)
        .compaction_threshold(64)
        .build(&data, 2);

    let stop = Arc::new(AtomicBool::new(false));
    let params = SearchParams {
        k: 8,
        n_candidates: usize::MAX,
        early_stop: false,
        ..Default::default()
    };

    // Per-reader progress counters: the writer keeps the index alive until
    // every reader has completed at least one query, so a slow-to-schedule
    // reader thread cannot race the (fast, in-memory) mutation loop.
    let progress: Vec<Arc<AtomicUsize>> = (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let index = index.clone();
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress[r]);
            std::thread::spawn(move || {
                let mut queries = 0usize;
                let mut epochs_seen = HashSet::new();
                let q = [7.0 + r as f32, 9.0 - r as f32];
                while !stop.load(Ordering::Relaxed) {
                    let gen = index.pin();
                    epochs_seen.insert(gen.epoch());
                    let live: HashSet<u32> = gen.live_ids().into_iter().collect();
                    let res = index.run_pinned(&gen, SearchRequest::new(&q).params(params));
                    assert_eq!(res.len(), 8.min(live.len()));
                    for &id in &res.ids {
                        assert!(
                            live.contains(&id),
                            "reader {r} got id {id} that is dead at epoch {}",
                            gen.epoch()
                        );
                    }
                    queries += 1;
                    progress.store(queries, Ordering::Relaxed);
                }
                (queries, epochs_seen.len())
            })
        })
        .collect();

    let writer = index.writer();
    let mut inserted = Vec::new();
    for i in 0..iters() as u32 {
        match i % 4 {
            // Inserts dominate so the live set keeps growing past the
            // compaction threshold.
            0 | 1 => inserted.push(writer.insert(&[(i % 30) as f32 + 0.3, (i % 20) as f32 + 0.7])),
            2 => {
                if let Some(id) = inserted.pop() {
                    assert!(writer.delete(id));
                }
            }
            _ => {
                writer.upsert(i % 600, &[(i % 30) as f32 + 0.9, (i % 20) as f32 + 0.1]);
            }
        }
    }
    let final_epoch = index.epoch();
    assert!(
        final_epoch >= iters() as u64,
        "every mutation publishes a new epoch"
    );
    while progress.iter().any(|p| p.load(Ordering::Relaxed) == 0) {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);

    for reader in readers {
        let (queries, distinct_epochs) = reader.join().unwrap();
        assert!(queries > 0, "every reader made progress");
        assert!(distinct_epochs >= 1);
    }

    // The writer crossed the compaction threshold at least once.
    let gen = index.pin();
    assert!(
        gen.delta_rows() < iters(),
        "threshold compaction folded the delta at least once ({} delta rows)",
        gen.delta_rows()
    );
}
