//! Recall-target SLA conformance suite.
//!
//! The adaptive controller's contract is behavioural, not structural: a
//! calibrated engine asked for `recall_target(t)` must *measurably* deliver
//! recall@k ≥ t − ε on queries it has never seen, and it must do so with
//! fewer bucket probes than the smallest fixed candidate budget that
//! reaches the same recall. This suite checks that contract for every
//! probe strategy at m ∈ {32, 64, 128} (backed by `u32`/`u64`/`u128`
//! code words) and targets {0.80, 0.90, 0.95}.
//!
//! The dataset is deliberately *clustered*: adaptive stopping only pays
//! off when query difficulty is heterogeneous. Queries landing inside a
//! clean cluster saturate recall after one or two buckets — a fixed
//! budget keeps probing to fill its item quota, the controller stops.
//! Queries near cluster boundaries straddle several buckets and need a
//! deeper walk; the controller keeps probing for exactly those.
//!
//! A separate golden test pins the exact per-strategy stop points on a
//! fixed-seed fixture so any drift in the calibration pipeline (binning,
//! quantile, cost normalization, replay order) is caught as a diff, not
//! as a silent quality regression.

use std::collections::HashSet;

use gqr_core::code::CodeWord;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::recall::{Calibrator, RecallModel};
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;

const DIM: usize = 8;
const K: usize = 10;
const N_CLUSTERS: usize = 30;
const BUCKET_CAP: usize = 768;
const MIH_BLOCKS: usize = 4;
const TARGETS: [f32; 3] = [0.80, 0.90, 0.95];
const EPSILON: f32 = 0.05;
/// Fixed candidate budgets the adaptive controller is compared against.
const LADDER: [usize; 5] = [50, 100, 200, 400, 800];

/// Deterministic xorshift stream, same sequence on every platform.
fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Uniform in [0, 1).
fn unit(next: &mut impl FnMut() -> u64) -> f32 {
    (next() >> 40) as f32 / (1u64 << 24) as f32
}

/// Approximately standard normal (Irwin–Hall with 6 summands).
fn gauss(next: &mut impl FnMut() -> u64) -> f32 {
    let sum: f32 = (0..6).map(|_| unit(next)).sum();
    (sum - 3.0) * (12.0f32 / 6.0).sqrt()
}

struct Fixture {
    data: Vec<f32>,
    /// Held-in calibration queries, flat n×DIM.
    calib: Vec<f32>,
    /// Held-out evaluation queries, flat n×DIM — disjoint RNG stream from
    /// both the data jitter and the calibration sample.
    held_out: Vec<f32>,
}

/// Gaussian-mixture fixture: `N_CLUSTERS` well-separated centers, cluster
/// sizes varying 24..56 rows (so the kept/k ratio feature sees spread),
/// queries jittered around centers with the same σ as the data.
///
/// `sigma` controls how many hash bits are "unstable" per cluster. The
/// SLA runs scale it inversely with the code length: the expected number
/// of hyperplanes cutting a cluster grows ∝ m·σ, and the generate-to-probe
/// Hamming baseline can only enumerate radius ≲ 1 at m = 128 before any
/// sane bucket cap — constant m·σ keeps every strategy's recall ceiling
/// above the strictest target at every width while preserving the easy /
/// boundary query mix that makes adaptive stopping measurable.
fn clustered_fixture(seed: u64, sigma: f32) -> Fixture {
    let mut next = rng_stream(seed);
    let centers: Vec<f32> = (0..N_CLUSTERS * DIM)
        .map(|_| unit(&mut next) * 10.0)
        .collect();
    let mut data = Vec::new();
    for c in 0..N_CLUSTERS {
        let size = 24 + (next() % 32) as usize;
        for _ in 0..size {
            for d in 0..DIM {
                data.push(centers[c * DIM + d] + sigma * gauss(&mut next));
            }
        }
    }
    let make_queries = |n_per_cluster: usize, stream_seed: u64| -> Vec<f32> {
        let mut qnext = rng_stream(stream_seed);
        let mut qs = Vec::new();
        for c in 0..N_CLUSTERS {
            for _ in 0..n_per_cluster {
                for d in 0..DIM {
                    qs.push(centers[c * DIM + d] + sigma * gauss(&mut qnext));
                }
            }
        }
        qs
    };
    let calib = make_queries(2, seed ^ 0x000C_A11B_8A7E);
    let held_out = make_queries(1, seed ^ 0x04E1_D007);
    Fixture {
        data,
        calib,
        held_out,
    }
}

/// Exact k-NN with `f64` accumulation, ties broken by id.
fn brute_force(data: &[f32], q: &[f32], k: usize) -> Vec<u32> {
    let mut all: Vec<(u32, f64)> = data
        .chunks_exact(DIM)
        .enumerate()
        .map(|(i, row)| {
            let d: f64 = row
                .iter()
                .zip(q)
                .map(|(a, b)| {
                    let diff = (*a - *b) as f64;
                    diff * diff
                })
                .sum();
            (i as u32, d)
        })
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all.into_iter().map(|(i, _)| i).collect()
}

fn strategies() -> [ProbeStrategy; 5] {
    [
        ProbeStrategy::HammingRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::MultiIndexHashing { blocks: MIH_BLOCKS },
    ]
}

/// Mean recall@K and mean buckets probed over the held-out queries.
fn run_queries<C: CodeWord>(
    engine: &QueryEngine<'_, Lsh, C>,
    queries: &[f32],
    gt: &[Vec<u32>],
    params: &SearchParams,
) -> (f64, f64) {
    let mut recall_sum = 0.0f64;
    let mut bucket_sum = 0usize;
    for (q, truth) in queries.chunks_exact(DIM).zip(gt) {
        let resp = engine.search(q, params);
        let truth: HashSet<u32> = truth.iter().copied().collect();
        let hits = resp.ids.iter().filter(|id| truth.contains(id)).count();
        recall_sum += hits as f64 / K as f64;
        bucket_sum += resp.stats.buckets_probed;
    }
    let n = gt.len() as f64;
    (recall_sum / n, bucket_sum as f64 / n)
}

fn calibrated_engine<'a, C: CodeWord>(
    model: &'a Lsh,
    table: &'a HashTable<C>,
    fx: &'a Fixture,
) -> (QueryEngine<'a, Lsh, C>, RecallModel) {
    let mut engine = QueryEngine::new(model, table, &fx.data, DIM);
    engine.enable_mih(MIH_BLOCKS);
    let calib_gt: Vec<Vec<u32>> = fx
        .calib
        .chunks_exact(DIM)
        .map(|q| brute_force(&fx.data, q, K))
        .collect();
    let mut cal = Calibrator::new(K).bucket_cap(BUCKET_CAP);
    for strat in strategies() {
        cal.observe(&engine, strat, &fx.calib, &calib_gt);
    }
    (engine, cal.finalize())
}

/// Jitter scaled down slightly faster than 1/m: constant m·σ keeps the
/// *expected* unstable-bit count flat across widths, but the generate-to-
/// probe Hamming baseline pays super-linearly for the tail (a 2-flip
/// bucket costs ~m²/2 probes to reach), so the tail mass must shrink as
/// m grows for GHR to keep a probe-savings edge at m = 128.
fn sigma_for(m: usize) -> f32 {
    0.15 * (32.0 / m as f32).powf(1.5)
}

/// The SLA conformance run for one code width.
fn run_sla<C: CodeWord>(m: usize) {
    let fx = clustered_fixture(0x5EED_0001, sigma_for(m));
    let model = Lsh::train(&fx.data, DIM, m, 7).unwrap();
    let table = HashTable::<C>::build(&model, &fx.data, DIM);
    let (mut engine, recall_model) = calibrated_engine(&model, &table, &fx);
    engine.set_recall_model(&recall_model);

    let gt: Vec<Vec<u32>> = fx
        .held_out
        .chunks_exact(DIM)
        .map(|q| brute_force(&fx.data, q, K))
        .collect();

    for strat in strategies() {
        // Fixed-budget ladder: (achieved recall, mean buckets probed).
        let fixed: Vec<(f64, f64)> = LADDER
            .iter()
            .map(|&n| {
                let params = SearchParams::for_k(K)
                    .strategy(strat)
                    .candidates(n)
                    .max_buckets(BUCKET_CAP)
                    .build()
                    .unwrap();
                run_queries(&engine, &fx.held_out, &gt, &params)
            })
            .collect();

        for target in TARGETS {
            let params = SearchParams::for_k(K)
                .strategy(strat)
                .recall_target(target)
                .max_buckets(BUCKET_CAP)
                .build()
                .unwrap();
            let (achieved, buckets) = run_queries(&engine, &fx.held_out, &gt, &params);
            assert!(
                achieved >= (target - EPSILON) as f64,
                "{} m={m}: recall_target {target} achieved only {achieved:.3} \
                 (mean {buckets:.1} buckets/query)",
                strat.name(),
            );

            // Probe-saving half of the contract, checked at the headline
            // 0.9 target: strictly fewer probes than the smallest fixed
            // budget that reaches the recall the controller achieved.
            if (target - 0.90).abs() < 1e-6 {
                let (base_recall, base_buckets) = fixed
                    .iter()
                    .find(|(r, _)| *r >= achieved)
                    .copied()
                    .unwrap_or(*fixed.last().unwrap());
                assert!(
                    buckets < base_buckets,
                    "{} m={m}: adaptive probed {buckets:.1} buckets/query at \
                     recall {achieved:.3}, but fixed budget reached recall \
                     {base_recall:.3} with {base_buckets:.1}",
                    strat.name(),
                );
            }
        }
    }
}

#[test]
fn sla_m32_u32() {
    run_sla::<u32>(32);
}

#[test]
fn sla_m64_u64() {
    run_sla::<u64>(64);
}

#[test]
fn sla_m128_u128() {
    run_sla::<u128>(128);
}

/// Golden stop points: on a fixed-seed fixture the exact mean probe count
/// per strategy is pinned. The calibration pipeline is deterministic end
/// to end (xorshift data, f32 binning, quantile over sorted samples), so
/// any change to RANK/RATIO/COST binning, the conservative quantile, cost
/// normalization, or replay order shows up here as an exact diff.
#[test]
fn golden_stop_points_m64() {
    let fx = clustered_fixture(0x5EED_0001, sigma_for(64));
    let model = Lsh::train(&fx.data, DIM, 64, 7).unwrap();
    let table = HashTable::<u64>::build(&model, &fx.data, DIM);
    let (mut engine, recall_model) = calibrated_engine(&model, &table, &fx);
    engine.set_recall_model(&recall_model);

    let expected: &[(&str, usize)] = &[
        ("HR", GOLDEN_HR),
        ("GHR", GOLDEN_GHR),
        ("QR", GOLDEN_QR),
        ("GQR", GOLDEN_GQR),
        ("MIH", GOLDEN_MIH),
    ];
    for (strat, &(name, want)) in strategies().iter().zip(expected) {
        assert_eq!(strat.name(), name);
        let params = SearchParams::for_k(K)
            .strategy(*strat)
            .recall_target(0.9)
            .max_buckets(BUCKET_CAP)
            .build()
            .unwrap();
        let total: usize = fx
            .held_out
            .chunks_exact(DIM)
            .map(|q| engine.search(q, &params).stats.buckets_probed)
            .sum();
        assert_eq!(
            total, want,
            "{name}: total buckets probed over the golden fixture drifted \
             (got {total}, pinned {want}) — recalibrate the pin only if the \
             change to the calibration pipeline is intentional",
        );
    }
}

// Pinned totals for `golden_stop_points_m64` (sum of buckets_probed over
// the 30 held-out queries). Regenerate by running the test and copying
// the reported values after an intentional pipeline change.
const GOLDEN_HR: usize = 85;
const GOLDEN_GHR: usize = 6466;
const GOLDEN_QR: usize = 94;
const GOLDEN_GQR: usize = 125;
const GOLDEN_MIH: usize = 7760;
