//! Serving-layer integration: executor lifecycle under load, and the
//! contract that every executor/shard metric appears under its pinned name
//! in both the JSON and Prometheus exports.

use gqr_core::engine::SearchParams;
use gqr_core::executor::{Executor, JobError, SubmitError};
use gqr_core::metrics::MetricsRegistry;
use gqr_core::request::SearchRequest;
use gqr_core::shard::ShardedIndex;
use gqr_l2h::pcah::Pcah;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

#[test]
fn shutdown_drains_the_queue_before_joining() {
    let done = Arc::new(AtomicUsize::new(0));
    let exec = Executor::builder().workers(2).queue_capacity(128).build();
    for _ in 0..100 {
        let done = Arc::clone(&done);
        exec.submit(move || {
            std::thread::sleep(Duration::from_micros(100));
            done.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    }
    exec.shutdown();
    assert_eq!(done.load(Ordering::SeqCst), 100);
    assert!(matches!(exec.submit(|| ()), Err(SubmitError::ShutDown)));
}

#[test]
fn drop_is_a_graceful_shutdown() {
    let done = Arc::new(AtomicUsize::new(0));
    {
        let exec = Executor::builder().workers(1).queue_capacity(64).build();
        for _ in 0..50 {
            let done = Arc::clone(&done);
            exec.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
    }
    assert_eq!(done.load(Ordering::SeqCst), 50, "drop drained the queue");
}

#[test]
fn stale_deadlines_are_skipped_not_run() {
    let metrics = MetricsRegistry::enabled();
    let exec = Executor::builder()
        .workers(1)
        .metrics(metrics.clone())
        .build();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let blocker = exec.submit(move || gate_rx.recv().unwrap()).unwrap();
    let doomed = exec
        .submit_with_deadline(Instant::now() + Duration::from_millis(1), || 42)
        .unwrap();
    let healthy = exec
        .submit_with_deadline(Instant::now() + Duration::from_secs(60), || 43)
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    gate_tx.send(()).unwrap();
    blocker.wait().unwrap();
    assert!(matches!(doomed.wait(), Err(JobError::DeadlineMissed)));
    assert_eq!(healthy.wait().unwrap(), 43);
    assert_eq!(
        metrics.counter_value("gqr_executor_deadline_missed_total"),
        Some(1)
    );
}

/// The acceptance contract: every serving metric shows up in both export
/// formats under exactly these names.
#[test]
fn executor_and_shard_metrics_export_under_pinned_names() {
    let metrics = MetricsRegistry::enabled();
    let exec = Executor::builder()
        .workers(2)
        .queue_capacity(1)
        .metrics(metrics.clone())
        .build();

    // Exercise the executor: completed jobs, a rejection, a deadline miss.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let blocker = exec.submit(move || gate_rx.recv().unwrap()).unwrap();
    let stale = exec.submit_with_deadline(Instant::now() - Duration::from_millis(1), || ());
    while exec.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let filler = exec.submit(|| std::thread::sleep(Duration::from_millis(5)));
    let _rejected = loop {
        // Race the second worker: keep refilling until a try_submit bounces.
        match exec.try_submit(|| ()) {
            Err(e) => break e,
            Ok(t) => {
                let _ = t;
            }
        }
    };
    gate_tx.send(()).unwrap();
    blocker.wait().unwrap();
    let _ = stale.map(|t| t.wait());
    let _ = filler.map(|t| t.wait());

    // Exercise the sharded path on the same registry.
    let mut data = Vec::new();
    for i in 0..200u32 {
        data.push((i % 20) as f32 + 0.01 * (i as f32).sin());
        data.push((i / 20) as f32);
    }
    let model = Pcah::train(&data, 2, 2).unwrap();
    let index = ShardedIndex::build(&model, &data, 2, 2).with_metrics(metrics.clone());
    let params = SearchParams {
        k: 5,
        n_candidates: usize::MAX,
        ..Default::default()
    };
    let _ = index.run_on(&exec, SearchRequest::new(&[3.0, 4.0]).params(params));

    let snap = metrics.snapshot();
    let json = snap.to_json();
    let prom = snap.to_prometheus();

    // Executor metrics.
    for name in [
        "gqr_executor_queue_depth",
        "gqr_executor_queue_wait_ns",
        "gqr_executor_jobs_submitted_total",
        "gqr_executor_jobs_completed_total",
        "gqr_executor_jobs_rejected_total",
        "gqr_executor_deadline_missed_total",
    ] {
        assert!(json.contains(name), "JSON export is missing {name}");
        assert!(prom.contains(name), "Prometheus export is missing {name}");
    }

    // Per-shard spans and sharded-merge metrics.
    for name in [
        "gqr_shard_total_ns",
        "gqr_shard_queries_total",
        "gqr_sharded_total_ns",
        "gqr_sharded_merge_ns",
        "gqr_sharded_queries_total",
    ] {
        assert!(json.contains(name), "JSON export is missing {name}");
        assert!(prom.contains(name), "Prometheus export is missing {name}");
    }
    // Shard spans carry both labels; the exhaustive search above evaluates
    // items on every shard, so the evaluate phase must have fired.
    assert!(
        metrics
            .histogram_names()
            .iter()
            .any(|n| n.starts_with("gqr_shard_phase_ns{phase=\"evaluate\"")
                && n.contains("shard=\"0\"")
                && n.contains("strategy=\"GQR\"")),
        "per-shard phase spans missing: {:?}",
        metrics.histogram_names()
    );
    // Prometheus exposition carries the shard label through.
    assert!(prom.contains("shard=\"0\""), "{prom}");
    assert!(prom.contains("shard=\"1\""));
}
