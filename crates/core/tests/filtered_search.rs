//! Attribute-filtered k-NN: the engine keeps probing until enough
//! *matching* candidates have been evaluated, and never returns a rejected
//! item.

use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use gqr_linalg::vecops::sq_dist_f32;

fn fixture() -> (Vec<f32>, Lsh, HashTable) {
    let mut data = Vec::new();
    for i in 0..2000u32 {
        data.push((i % 40) as f32);
        data.push((i / 40) as f32 + 0.001 * (i % 11) as f32);
    }
    let model = Lsh::train(&data, 2, 9, 5).unwrap();
    let table: HashTable = HashTable::build(&model, &data, 2);
    (data, model, table)
}

#[test]
fn filter_excludes_rejected_ids() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let params = SearchParams {
        k: 10,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    // Only even ids are eligible.
    let res = engine.run(
        SearchRequest::new(&[20.0, 25.0])
            .params(params)
            .filter(|id| id % 2 == 0),
    );
    assert_eq!(res.len(), 10);
    assert!(res.ids.iter().all(|&id| id % 2 == 0));
}

#[test]
fn filtered_exhaustive_matches_brute_force_over_subset() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let q = [13.0f32, 29.0];
    let params = SearchParams {
        k: 5,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    let eligible = |id: u32| id % 3 == 1;
    let res = engine.run(SearchRequest::new(&q).params(params).filter(eligible));

    let mut brute: Vec<(u32, f32)> = data
        .chunks_exact(2)
        .enumerate()
        .filter(|(i, _)| eligible(*i as u32))
        .map(|(i, row)| (i as u32, sq_dist_f32(&q, row)))
        .collect();
    brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    brute.truncate(5);
    assert_eq!(res.ranked(), brute);
}

#[test]
fn budget_counts_matching_items_only() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let params = SearchParams {
        k: 5,
        n_candidates: 50,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    // A very selective filter forces deeper probing than the unfiltered
    // search would need for the same budget.
    let selective = engine.run(
        SearchRequest::new(&[5.0, 5.0])
            .params(params)
            .filter(|id| id % 10 == 0),
    );
    let unfiltered = engine.search(&[5.0, 5.0], &params);
    assert!(selective.stats.items_evaluated >= 50);
    assert!(
        selective.stats.buckets_probed > unfiltered.stats.buckets_probed,
        "selective filter must probe more buckets ({} vs {})",
        selective.stats.buckets_probed,
        unfiltered.stats.buckets_probed
    );
}

#[test]
fn reject_all_returns_empty() {
    let (data, model, table) = fixture();
    let engine = QueryEngine::new(&model, &table, &data, 2);
    let params = SearchParams {
        k: 5,
        n_candidates: 100,
        strategy: ProbeStrategy::GenerateHammingRanking,
        ..Default::default()
    };
    let res = engine.run(
        SearchRequest::new(&[1.0, 1.0])
            .params(params)
            .filter(|_| false),
    );
    assert!(res.is_empty());
    assert_eq!(res.stats.items_evaluated, 0);
}

#[test]
fn mih_filtered_matches_brute_force_over_subset() {
    let (data, model, table) = fixture();
    let mut engine = QueryEngine::new(&model, &table, &data, 2);
    engine.enable_mih(3);
    let q = [17.0f32, 23.0];
    let params = SearchParams {
        k: 8,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::MultiIndexHashing { blocks: 3 },
        early_stop: false,
        ..Default::default()
    };
    let eligible = |id: u32| id % 4 == 2;
    let res = engine.run(SearchRequest::new(&q).params(params).filter(eligible));

    let mut brute: Vec<(u32, f32)> = data
        .chunks_exact(2)
        .enumerate()
        .filter(|(i, _)| eligible(*i as u32))
        .map(|(i, row)| (i as u32, sq_dist_f32(&q, row)))
        .collect();
    brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    brute.truncate(8);
    assert_eq!(res.ranked(), brute);
    // Rejected items never consume evaluation budget.
    assert_eq!(res.stats.items_evaluated, 2000 / 4);
}
