//! The mutation-layer contract, end to end: interleaved inserts, deletes,
//! and queries return only live ids; compaction never changes an answer
//! (bit-identical across all five probe strategies); and a snapshot
//! round-trips the delta segment and tombstone set exactly.

use gqr_core::engine::{ProbeStrategy, SearchParams};
use gqr_core::live::MutableIndex;
use gqr_core::metrics::MetricsRegistry;
use gqr_core::request::SearchRequest;
use gqr_l2h::lsh::Lsh;
use gqr_linalg::vecops::sq_dist_f32;
use std::collections::HashMap;
use std::sync::Arc;

const STRATEGIES: [ProbeStrategy; 5] = [
    ProbeStrategy::HammingRanking,
    ProbeStrategy::GenerateHammingRanking,
    ProbeStrategy::QdRanking,
    ProbeStrategy::GenerateQdRanking,
    ProbeStrategy::MultiIndexHashing { blocks: 3 },
];

fn grid(n: u32) -> Vec<f32> {
    let mut data = Vec::new();
    for i in 0..n {
        data.push((i % 25) as f32 + 0.001 * ((i * 7) % 13) as f32);
        data.push((i / 25) as f32);
    }
    data
}

fn model(data: &[f32]) -> Lsh {
    Lsh::train(data, 2, 9, 5).unwrap()
}

fn exhaustive(k: usize, strategy: ProbeStrategy) -> SearchParams {
    SearchParams {
        k,
        n_candidates: usize::MAX,
        strategy,
        early_stop: false,
        ..Default::default()
    }
}

/// Deterministic churn: delete every 3rd initial row, insert replacements
/// near the deleted positions, upsert a handful. Returns the surviving
/// `id -> row` map for brute-force verification.
fn churn(index: &MutableIndex<Lsh>, data: &[f32]) -> HashMap<u32, Vec<f32>> {
    let mut live: HashMap<u32, Vec<f32>> = data
        .chunks_exact(2)
        .enumerate()
        .map(|(i, row)| (i as u32, row.to_vec()))
        .collect();
    let writer = index.writer();
    let n = live.len() as u32;
    for id in (0..n).step_by(3) {
        assert!(writer.delete(id));
        live.remove(&id);
    }
    for j in 0..40u32 {
        let row = vec![(j % 25) as f32 + 0.5, (j / 25) as f32 + 0.5];
        let id = writer.insert(&row);
        assert!(id >= n, "fresh ids never collide with the initial rows");
        live.insert(id, row);
    }
    for id in [1u32, 4, 7, 10] {
        let row = vec![(id % 25) as f32 + 0.25, 30.0 + id as f32];
        assert!(writer.upsert(id, &row));
        live.insert(id, row);
    }
    live
}

fn brute_force(live: &HashMap<u32, Vec<f32>>, q: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut all: Vec<(u32, f32)> = live
        .iter()
        .map(|(&id, row)| (id, sq_dist_f32(q, row)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

fn queries() -> Vec<Vec<f32>> {
    (0..8)
        .map(|i| vec![(i * 3 % 23) as f32 + 0.4, (i % 12) as f32 + 0.6])
        .collect()
}

#[test]
fn churned_index_returns_only_live_ids_and_exact_neighbors() {
    let data = grid(500);
    let model = Arc::new(model(&data));
    let index: MutableIndex<_> = MutableIndex::builder(Arc::clone(&model))
        .mih_blocks(3)
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let live = churn(&index, &data);
    assert_eq!(index.n_items(), live.len());

    for strategy in STRATEGIES {
        let params = exhaustive(10, strategy);
        for q in queries() {
            let res = index.run(SearchRequest::new(&q).params(params));
            assert_eq!(
                res.ranked(),
                brute_force(&live, &q, 10),
                "strategy={} q={q:?}",
                strategy.name()
            );
            assert!(res.ids.iter().all(|&id| live.contains_key(&id)));
        }
    }
}

#[test]
fn compaction_is_invisible_to_queries_for_every_strategy() {
    let data = grid(500);
    let model = Arc::new(model(&data));
    // Same churn on two indexes; compact one, leave the other fragmented.
    let fragmented = MutableIndex::builder(Arc::clone(&model))
        .mih_blocks(3)
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let compacted = MutableIndex::builder(Arc::clone(&model))
        .mih_blocks(3)
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let live = churn(&fragmented, &data);
    let live2 = churn(&compacted, &data);
    assert_eq!(
        live.keys().collect::<std::collections::BTreeSet<_>>(),
        live2.keys().collect::<std::collections::BTreeSet<_>>()
    );

    compacted.compact();
    let gen = compacted.pin();
    assert_eq!(gen.delta_rows(), 0, "compaction folds the delta away");
    assert_eq!(gen.n_tombstones(), 0, "compaction drops the tombstones");
    assert_eq!(compacted.n_items(), fragmented.n_items());

    for strategy in STRATEGIES {
        let params = exhaustive(10, strategy);
        for q in queries() {
            let before = fragmented.run(SearchRequest::new(&q).params(params));
            let after = compacted.run(SearchRequest::new(&q).params(params));
            assert_eq!(
                after.ranked(),
                before.ranked(),
                "strategy={} q={q:?}",
                strategy.name()
            );
        }
    }
}

#[test]
fn filter_composes_with_tombstones() {
    let data = grid(500);
    let model = Arc::new(model(&data));
    let index: MutableIndex<_> = MutableIndex::builder(Arc::clone(&model))
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let live = churn(&index, &data);

    let accept = |id: u32| id.is_multiple_of(2);
    let want: Vec<(u32, f32)> = {
        let subset: HashMap<u32, Vec<f32>> = live
            .iter()
            .filter(|(&id, _)| accept(id))
            .map(|(&id, row)| (id, row.clone()))
            .collect();
        brute_force(&subset, &[7.3, 9.1], 10)
    };
    let params = exhaustive(10, ProbeStrategy::GenerateQdRanking);
    let res = index.run(
        SearchRequest::new(&[7.3, 9.1])
            .params(params)
            .filter(accept),
    );
    assert_eq!(res.ranked(), want);
}

#[test]
fn snapshot_round_trips_delta_and_tombstones() {
    let dir = std::env::temp_dir().join(format!("gqr-live-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("churned.gqr");

    let data = grid(400);
    let model = Arc::new(model(&data));
    let index: MutableIndex<_> = MutableIndex::builder(Arc::clone(&model))
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let live = churn(&index, &data);
    let gen = index.pin();
    assert!(gen.delta_rows() > 0 && gen.n_tombstones() > 0);

    index.save_snapshot(&path).unwrap();
    let loaded: MutableIndex = MutableIndex::from_snapshot(&path).unwrap();
    let lgen = loaded.pin();
    assert_eq!(lgen.epoch(), gen.epoch());
    assert_eq!(lgen.delta_rows(), gen.delta_rows());
    assert_eq!(lgen.n_tombstones(), gen.n_tombstones());
    assert_eq!(loaded.n_items(), live.len());

    let params = exhaustive(10, ProbeStrategy::GenerateQdRanking);
    for q in queries() {
        let want = index.run(SearchRequest::new(&q).params(params));
        let got = loaded.run(SearchRequest::new(&q).params(params));
        assert_eq!(got.ranked(), want.ranked(), "q={q:?}");
    }

    // The loaded writer keeps allocating fresh ids, never recycling.
    let next = loaded.writer().insert(&[0.5, 0.5]);
    assert!(live.keys().all(|&id| id != next));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutation_metrics_use_pinned_names() {
    let data = grid(200);
    let model = Arc::new(model(&data));
    let metrics = MetricsRegistry::enabled();
    let index: MutableIndex<_> = MutableIndex::builder(Arc::clone(&model))
        .metrics(metrics.clone())
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let writer = index.writer();
    writer.insert(&[1.0, 1.0]);
    writer.delete(0);
    writer.upsert(3, &[2.0, 2.0]);
    index.compact();
    let _ = index.run(SearchRequest::new(&[1.0, 1.0]));

    let prom = metrics.snapshot().to_prometheus();
    for name in [
        "gqr_mutations_total",
        "gqr_live_epoch",
        "gqr_delta_items",
        "gqr_tombstones",
        "gqr_compaction_total",
        "gqr_compaction_ns",
        "gqr_live_total_ns",
        "gqr_live_queries_total",
    ] {
        assert!(prom.contains(name), "Prometheus export is missing {name}");
    }
    assert_eq!(
        metrics.counter_value("gqr_mutations_total{op=\"insert\"}"),
        Some(1)
    );
    assert_eq!(
        metrics.counter_value("gqr_mutations_total{op=\"delete\"}"),
        Some(1)
    );
    assert_eq!(
        metrics.counter_value("gqr_mutations_total{op=\"upsert\"}"),
        Some(1)
    );
}

#[test]
fn mutations_and_compaction_record_traces_with_markers() {
    use gqr_core::metrics::{EventData, MarkerKind, TraceConfig};
    let data = grid(40);
    let model = Arc::new(model(&data));
    let metrics = MetricsRegistry::enabled();
    metrics.enable_tracing(TraceConfig {
        sample_every: 1,
        ..TraceConfig::default()
    });
    let index: MutableIndex<_> = MutableIndex::builder(Arc::clone(&model))
        .metrics(metrics.clone())
        .compaction_threshold(usize::MAX)
        .build(&data, 2);
    let writer = index.writer();
    writer.insert(&[1.0, 1.0]);
    writer.delete(0);
    index.compact();

    let tracing = metrics.tracing().unwrap();
    let traces = tracing.store().all();
    let marker_of = |name: &str| {
        traces
            .iter()
            .filter(|t| t.name == name)
            .flat_map(|t| t.events.iter())
            .filter_map(|e| match e.data {
                EventData::Marker { kind, .. } => Some(kind),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    let mutation_markers = marker_of("mutation");
    assert!(
        mutation_markers.contains(&MarkerKind::DeltaAppend),
        "insert must mark a delta append: {mutation_markers:?}"
    );
    assert!(
        mutation_markers.contains(&MarkerKind::Tombstone),
        "delete must mark a tombstone: {mutation_markers:?}"
    );
    let compaction_markers = marker_of("compaction");
    assert!(compaction_markers.contains(&MarkerKind::CompactionBegin));
    assert!(compaction_markers.contains(&MarkerKind::CompactionEnd));
    for t in &traces {
        t.check_well_formed().unwrap();
    }
    // The compaction succeeded: the failure counter stayed untouched.
    assert_eq!(metrics.counter_value("gqr_compaction_failures_total"), None);
}
