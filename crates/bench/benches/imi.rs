//! Inverted multi-index micro-benchmarks: multi-sequence traversal and
//! candidate collection (the retrieval half of the OPQ+IMI comparator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gqr_dataset::{DatasetSpec, Scale};
use gqr_vq::imi::{ImiOptions, InvertedMultiIndex};
use gqr_vq::kmeans::KMeansOptions;
use std::hint::black_box;

fn bench_imi(c: &mut Criterion) {
    let ds = DatasetSpec::sift1m().scale(Scale::Smoke).generate(41);
    let imi = InvertedMultiIndex::build(
        ds.as_slice(),
        ds.dim(),
        &ImiOptions {
            k: 32,
            kmeans: KMeansOptions {
                seed: 7,
                ..Default::default()
            },
        },
    );
    let q = ds.sample_queries(1, 3).remove(0);

    let mut group = c.benchmark_group("imi");
    group.sample_size(30);
    group.bench_function("traverse_first_cell", |b| {
        b.iter(|| black_box(imi.traverse(black_box(&q)).next()))
    });
    for &cells in &[16usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("traverse_cells", cells),
            &cells,
            |b, &n| {
                b.iter(|| {
                    let mut t = imi.traverse(&q);
                    for _ in 0..n {
                        black_box(t.next());
                    }
                })
            },
        );
    }
    group.bench_function("collect_500_candidates", |b| {
        b.iter(|| black_box(imi.collect_candidates(&q, 500)))
    });
    group.finish();
}

criterion_group!(benches, bench_imi);
criterion_main!(benches);
