//! Filtered-search benchmark: the selectivity-aware planner vs the closure
//! post-filter escape hatch.
//!
//! Headline number for the attribute-filtering feature: across a
//! selectivity sweep (0.001 → 0.9) the planner must never lose recall
//! against the trivially-correct closure post-filter, and at selectivity
//! ≤ 0.01 — where the planner switches to brute-force over the posting
//! bitmap instead of probing the whole code space — it must be at least
//! 5x faster at equal recall@10.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the dataset for CI smoke runs. The
//! self-timed section records `results/BENCH_filtered.json` (plain `std`
//! formatting — no JSON dependency); its `gate_pass` field encodes the
//! 5x low-selectivity gate.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::attrs::{AttributeStore, Predicate};
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 8;
const K: usize = 10;
const M: usize = 16;
/// `pct` values are uniform in `0..PCT_BINS`, so a range predicate
/// `pct <= hi` has selectivity `(hi+1)/PCT_BINS` (kept under the postings
/// cap so every sweep point gets an exact bitmap).
const PCT_BINS: i64 = 1000;
const SELECTIVITIES: [f64; 5] = [0.001, 0.01, 0.1, 0.5, 0.9];
/// The issue's gate: at selectivity ≤ 0.01 the planner must win ≥ 5x.
const GATE_MAX_SELECTIVITY: f64 = 0.01;
const GATE_SPEEDUP: f64 = 5.0;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

fn filtered_ground_truth(data: &[f32], q: &[f32], mask: &[bool], k: usize) -> Vec<u32> {
    let mut all: Vec<(u32, f64)> = data
        .chunks_exact(DIM)
        .enumerate()
        .filter(|(i, _)| mask[*i])
        .map(|(i, row)| {
            let d: f64 = row
                .iter()
                .zip(q)
                .map(|(a, b)| {
                    let diff = (*a - *b) as f64;
                    diff * diff
                })
                .sum();
            (i as u32, d)
        })
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all.into_iter().map(|(i, _)| i).collect()
}

/// (mean recall@K, mean latency µs) for one arm over all queries.
fn measure(
    engine: &QueryEngine<'_, Lsh, u64>,
    queries: &[f32],
    gt: &[Vec<u32>],
    params: SearchParams,
    mut arm: impl FnMut(&QueryEngine<'_, Lsh, u64>, &[f32], SearchParams) -> Vec<u32>,
) -> (f64, f64) {
    let mut recall_sum = 0.0f64;
    let t = Instant::now();
    for (q, truth) in queries.chunks_exact(DIM).zip(gt) {
        let ids = black_box(arm(engine, q, params));
        let denom = truth.len().clamp(1, K);
        let hits = ids.iter().filter(|id| truth.contains(id)).count();
        recall_sum += hits as f64 / denom as f64;
    }
    let us = t.elapsed().as_micros() as f64;
    let n = gt.len() as f64;
    (recall_sum / n, us / n)
}

fn bench_filtered(c: &mut Criterion) {
    c.bench_function("filtered_planner_record", |b| b.iter(|| 0));

    let (n_items, n_queries) = if smoke() { (15_000, 30) } else { (60_000, 100) };
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let data: Vec<f32> = (0..n_items * DIM)
        .map(|_| rng.gen::<f32>() * 10.0)
        .collect();
    let queries: Vec<f32> = (0..n_queries * DIM)
        .map(|_| rng.gen::<f32>() * 10.0)
        .collect();
    let pct: Vec<i64> = (0..n_items)
        .map(|_| (rng.gen::<u64>() % PCT_BINS as u64) as i64)
        .collect();
    let attrs = AttributeStore::builder(n_items)
        .int_column("pct", pct.clone())
        .unwrap()
        .build();

    let model = Lsh::train(&data, DIM, M, 7).unwrap();
    let table: HashTable = HashTable::build(&model, &data, DIM);
    let engine = QueryEngine::new(&model, &table, &data, DIM).with_attrs(&attrs);
    // Exhaustive budget on both arms: the closure baseline walks the whole
    // probe sequence, so it reaches the filtered-recall ceiling, and the
    // planner keeps every arm exact — recall@10 is equal by construction
    // and the comparison is pure latency.
    let params = SearchParams {
        k: K,
        n_candidates: usize::MAX,
        strategy: ProbeStrategy::GenerateQdRanking,
        ..Default::default()
    };
    let brute_budget = 4096usize.max(16 * K); // the engine's usize::MAX rule

    let mut lines = Vec::new();
    let mut gate_pass = true;
    let mut gate_rows = 0usize;
    for target in SELECTIVITIES {
        let hi = ((target * PCT_BINS as f64).ceil() as i64 - 1).max(0);
        let pred = Predicate::range("pct", None, Some(hi)).unwrap();
        let mask: Vec<bool> = pct.iter().map(|&v| v <= hi).collect();
        let survivors = mask.iter().filter(|&&m| m).count();
        let actual = survivors as f64 / n_items as f64;
        let plan = attrs.plan(&pred, brute_budget).plan.name();

        let gt: Vec<Vec<u32>> = queries
            .chunks_exact(DIM)
            .map(|q| filtered_ground_truth(&data, q, &mask, K))
            .collect();

        let (plan_recall, plan_us) = measure(&engine, &queries, &gt, params, |e, q, p| {
            e.run(SearchRequest::new(q).params(p).predicate(pred.clone()))
                .ids
        });
        let (post_recall, post_us) = measure(&engine, &queries, &gt, params, |e, q, p| {
            e.run(
                SearchRequest::new(q)
                    .params(p)
                    .filter(|id| mask[id as usize]),
            )
            .ids
        });
        let speedup = post_us / plan_us.max(1e-9);

        let gated = target <= GATE_MAX_SELECTIVITY;
        if gated {
            gate_rows += 1;
            if speedup < GATE_SPEEDUP || plan_recall + 1e-9 < post_recall {
                gate_pass = false;
            }
        }
        println!(
            "filtered: selectivity={actual:.4} ({survivors} rows) plan={plan} \
             planner={plan_us:.0}us recall={plan_recall:.3} \
             closure={post_us:.0}us recall={post_recall:.3} speedup={speedup:.1}x{}",
            if gated { " [gated]" } else { "" }
        );
        lines.push(format!(
            "    {{\"selectivity\": {actual:.4}, \"survivors\": {survivors}, \
             \"plan\": \"{plan}\", \"planner_latency_us\": {plan_us:.1}, \
             \"planner_recall\": {plan_recall:.4}, \
             \"closure_latency_us\": {post_us:.1}, \
             \"closure_recall\": {post_recall:.4}, \"speedup\": {speedup:.2}, \
             \"gated\": {gated}}}"
        ));
    }
    if gate_rows == 0 {
        gate_pass = false; // the sweep must actually exercise the gate
    }
    println!("filtered: gate_pass={gate_pass} ({gate_rows} gated rows)");

    let json = format!(
        "{{\n  \"bench\": \"filtered\",\n  \
         \"gate\": \"planner >= 5x faster than closure post-filter at \
         selectivity <= 0.01 with no recall@10 loss\",\n  \
         \"m\": {M},\n  \"k\": {K},\n  \"n_items\": {n_items},\n  \
         \"n_queries\": {n_queries},\n  \"gate_pass\": {gate_pass},\n  \
         \"measurements\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_filtered.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("filtered: could not write {}: {e}", path.display());
        } else {
            println!("filtered: recorded to {}", path.display());
        }
    }
}

criterion_group!(benches, bench_filtered);
criterion_main!(benches);
