//! End-to-end serving bench: drives a real `gqr-serve` HTTP server with the
//! in-repo open-loop load generator and records the admission-control gate
//! to `results/BENCH_serving.json` (hand-formatted — the offline CI image
//! stubs serde_json).
//!
//! Four phases:
//!   1. **unloaded** — low QPS, establishes the baseline p99;
//!   2. **saturation estimate** — from the unloaded p50 and the worker
//!      count (`sat ≈ workers / service_time`);
//!   3. **overload sweep** — 0.5x / 1x / 2x the estimated saturation. At
//!      2x the server must shed (429/503) while the p99 of *admitted*
//!      queries stays within 3x of the unloaded p99: load shedding, not
//!      queue collapse;
//!   4. **graceful drain** — shutdown under in-flight load must answer
//!      every request that reached the server (200 or a clean 503), losing
//!      zero admitted queries.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::engine::QueryEngine;
use gqr_core::index::Index;
use gqr_core::metrics::MetricsRegistry;
use gqr_core::table::HashTable;
use gqr_l2h::pcah::Pcah;
use gqr_serve::json::Json;
use gqr_serve::loadgen::{self, LoadReport, LoadgenConfig};
use gqr_serve::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Workers are kept low and the executor queue short on purpose: the bench
/// wants saturation to be *reachable* by the load generator so the 2x
/// overload step genuinely overloads, and a short queue is what bounds the
/// latency of admitted queries under that overload.
const WORKERS: usize = 2;
const QUEUE: usize = 2;
const HANDLERS: usize = 32;
/// Plenty of senders keeps each one's arrival schedule sparse, so a slow
/// admitted request does not delay that sender's later arrivals and the
/// measured latency reflects server-side queueing, not client backlog.
const SENDERS: usize = 32;

/// Deterministic blob of clustered points (xorshift64*), sized so one
/// exhaustive query costs enough that two workers saturate at a rate the
/// loadgen can comfortably double.
fn make_data(n: usize, dim: usize) -> Vec<f32> {
    let mut state = 0x1234_5678_9abc_def1u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let center = (i % 32) as f32;
        for _ in 0..dim {
            data.push(center + next() * 4.0);
        }
    }
    data
}

/// A leaked, process-lifetime engine: `Server` borrows the index for
/// `'static`, and a bench process does not need to reclaim it.
fn static_index(n: usize, dim: usize, bits: usize) -> &'static (dyn Index + Sync) {
    let data: &'static [f32] = Vec::leak(make_data(n, dim));
    let model: &'static Pcah = Box::leak(Box::new(Pcah::train(data, dim, bits).unwrap()));
    let table: &'static HashTable = Box::leak(Box::new(HashTable::build(model, data, dim)));
    let engine = QueryEngine::new(model, table, data, dim).with_metrics(MetricsRegistry::enabled());
    Box::leak(Box::new(engine))
}

fn server_config() -> ServerConfig {
    ServerConfig {
        handlers: HANDLERS,
        workers: WORKERS,
        queue_capacity: QUEUE,
        // Generous deadline: this bench sheds at the queue, not the clock.
        default_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

/// An exhaustive-scan search body: `candidates = n` forces every query to
/// rank the whole base set, making service time dominate HTTP overhead.
fn search_body(n: usize, dim: usize) -> String {
    let q: Vec<String> = (0..dim)
        .map(|d| format!("{:.3}", 16.0 + d as f32 * 0.01))
        .collect();
    format!(r#"{{"query":[{}],"k":10,"candidates":{}}}"#, q.join(","), n)
}

/// One-shot raw HTTP POST (connection: close); 0 on transport failure.
fn one_shot(addr: std::net::SocketAddr, body: &str) -> u16 {
    let attempt = || -> std::io::Result<u16> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let raw = format!(
            "POST /search HTTP/1.1\r\nhost: b\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(raw.as_bytes())?;
        let mut response = Vec::new();
        stream.read_to_end(&mut response)?;
        let text = String::from_utf8_lossy(&response);
        Ok(text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0))
    };
    attempt().unwrap_or(0)
}

fn bench_http_serving(c: &mut Criterion) {
    c.bench_function("http_serving_record", |b| b.iter(|| 0));

    let (n, dim, bits) = if smoke() {
        (60_000, 16, 12)
    } else {
        (120_000, 24, 12)
    };
    let (unloaded_dur, step_dur, warmup) = if smoke() {
        (
            Duration::from_millis(600),
            Duration::from_millis(600),
            Duration::from_millis(200),
        )
    } else {
        (
            Duration::from_secs(2),
            Duration::from_secs(2),
            Duration::from_millis(300),
        )
    };
    let body = search_body(n, dim);

    // ---- phases 1-3: one server for the latency/overload measurements ----
    let index = static_index(n, dim, bits);
    let server = Server::start(index, server_config()).expect("bind");
    let base = LoadgenConfig {
        addr: server.addr().to_string(),
        duration: step_dur,
        warmup,
        senders: SENDERS,
        body: body.clone(),
        client: Some("bench".to_string()),
        ..LoadgenConfig::default()
    };

    // Low enough that even a heavyweight full-scale query leaves the two
    // workers mostly idle — this really is the unloaded baseline.
    let unloaded = loadgen::run(&LoadgenConfig {
        qps: if smoke() { 40.0 } else { 15.0 },
        duration: unloaded_dur,
        senders: 4,
        ..base.clone()
    });
    // Saturation from measured service time; the clamp keeps the overload
    // step within what an in-process loadgen can actually offer.
    let service_s = (unloaded.p50_us.max(50) as f64) / 1e6;
    let sat_qps = (WORKERS as f64 / service_s).clamp(50.0, 4000.0);
    let steps = [0.5 * sat_qps, 1.0 * sat_qps, 2.0 * sat_qps];
    let sweep = loadgen::sweep(&base, &steps);
    let overload = sweep.last().expect("sweep ran").clone();
    server.shutdown();

    // ---- phase 4: a fresh server for the drain-under-load check ----
    let drain_server = Server::start(static_index(n, dim, bits), server_config()).expect("bind");
    let drain_addr = drain_server.addr();
    let drain_body = body.clone();
    let n_drain = 8;
    let clients: Vec<_> = (0..n_drain)
        .map(|_| {
            let body = drain_body.clone();
            std::thread::spawn(move || one_shot(drain_addr, &body))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(15));
    let drain_report = drain_server.shutdown();
    let mut drain_completed = 0u64;
    let mut drain_refused = 0u64;
    let mut drain_lost = 0u64;
    for client in clients {
        match client.join().unwrap() {
            200 => drain_completed += 1,
            429 | 503 | 504 => drain_refused += 1,
            _ => drain_lost += 1,
        }
    }

    // ---- gates ----
    let p99_ratio = overload.p99_us as f64 / unloaded.p99_us.max(1) as f64;
    let gate_sheds = overload.shed > 0;
    let gate_p99 = overload.completed > 0 && p99_ratio <= 3.0;
    let gate_drain = drain_lost == 0 && drain_report.served == drain_completed;
    let gate_pass = gate_sheds && gate_p99 && gate_drain;

    println!(
        "http_serving: sat≈{:.0} qps | unloaded p99 {} us | 2x overload: shed {}/{} p99 {} us ({:.2}x) | drain: {} done {} refused {} lost | gate_pass={}",
        sat_qps,
        unloaded.p99_us,
        overload.shed,
        overload.offered,
        overload.p99_us,
        p99_ratio,
        drain_completed,
        drain_refused,
        drain_lost,
        gate_pass
    );

    let step_json = |r: &LoadReport| -> Json { r.to_json() };
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serving".into())),
        ("smoke".into(), Json::Bool(smoke())),
        ("n".into(), Json::Num(n as f64)),
        ("dim".into(), Json::Num(dim as f64)),
        ("workers".into(), Json::Num(WORKERS as f64)),
        ("queue_capacity".into(), Json::Num(QUEUE as f64)),
        ("unloaded".into(), step_json(&unloaded)),
        ("saturation_qps_est".into(), Json::Num(sat_qps)),
        (
            "sweep".into(),
            Json::Arr(sweep.iter().map(step_json).collect()),
        ),
        ("overload".into(), step_json(&overload)),
        ("overload_p99_ratio".into(), Json::Num(p99_ratio)),
        (
            "drain".into(),
            Json::Obj(vec![
                ("requests".into(), Json::Num(n_drain as f64)),
                ("completed".into(), Json::Num(drain_completed as f64)),
                ("refused".into(), Json::Num(drain_refused as f64)),
                ("lost".into(), Json::Num(drain_lost as f64)),
                (
                    "served_reported".into(),
                    Json::Num(drain_report.served as f64),
                ),
            ]),
        ),
        (
            "gates".into(),
            Json::Obj(vec![
                ("overload_sheds".into(), Json::Bool(gate_sheds)),
                ("p99_within_3x".into(), Json::Bool(gate_p99)),
                ("drain_zero_lost".into(), Json::Bool(gate_drain)),
            ]),
        ),
        ("gate_pass".into(), Json::Bool(gate_pass)),
    ]);

    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let out = out_dir.join("BENCH_serving.json");
        if std::fs::write(&out, doc.to_string() + "\n").is_ok() {
            println!("http_serving: wrote {}", out.display());
        }
    }
}

criterion_group!(benches, bench_http_serving);
criterion_main!(benches);
