//! Observability tax: single-query latency with metrics disabled (the
//! default), enabled, and on an engine built before the metrics layer
//! existed semantics-wise (no registry attached at all — identical to
//! disabled, kept as the regression reference). The disabled path must cost
//! only the per-phase branch, so "disabled" and "none" should be
//! indistinguishable and "enabled" should stay within a few percent.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_bench::models::ModelKind;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::metrics::MetricsRegistry;
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_metrics_overhead(c: &mut Criterion) {
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(51);
    let model = ModelKind::Itq.train(ds.as_slice(), ds.dim(), 10, 0);
    let table: HashTable = HashTable::build(model.as_ref(), ds.as_slice(), ds.dim());
    let q = ds.sample_queries(1, 9).remove(0);
    let params = SearchParams::for_k(20)
        .candidates(200)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .build()
        .expect("valid search params");

    let mut group = c.benchmark_group("metrics_overhead_gqr_200");
    group.sample_size(50);
    // Pre-existing construction path: no registry ever attached.
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim());
    group.bench_function("none", |b| {
        b.iter(|| black_box(engine.search(black_box(&q), &params)))
    });
    // Explicitly disabled registry: the instrumented code runs, each span is
    // a single branch, no clock reads.
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim())
        .with_metrics(MetricsRegistry::disabled());
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(engine.search(black_box(&q), &params)))
    });
    // Enabled registry: two `Instant::now` calls per span plus one atomic
    // histogram record per non-zero phase at flush.
    let metrics = MetricsRegistry::enabled();
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim())
        .with_metrics(metrics.clone());
    group.bench_function("enabled", |b| {
        b.iter(|| black_box(engine.search(black_box(&q), &params)))
    });
    group.finish();
    // Keep the registry alive to the end so "enabled" can't be optimized
    // into a disabled-like path.
    black_box(metrics.snapshot());
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
