//! Tracing tax: single-query latency with tracing off (the default), with
//! tracing enabled but the query unsampled (the steady-state serving
//! configuration — one atomic fetch-add at admission, every span call a
//! branch), and with every query sampled (`sample_every = 1`, full span
//! tree + QD trajectory recorded). The disabled and unsampled modes must
//! stay within a few percent of each other; the gate (`gate_pass` in
//! `results/BENCH_trace.json`) enforces unsampled overhead ≤ 2%.
//!
//! Self-timed with min-of-repeats (the criterion harness may be stubbed in
//! offline CI; this section only needs `std`). JSON is hand-formatted — the
//! offline CI image stubs serde_json.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_bench::models::ModelKind;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::metrics::{MetricsRegistry, TraceConfig};
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Mean per-query microseconds over the batch, best of `repeats` passes
/// (min is robust to scheduler noise in a way the mean is not).
fn best_pass_us<M: gqr_l2h::HashModel + ?Sized>(
    engine: &QueryEngine<'_, M>,
    queries: &[Vec<f32>],
    params: &SearchParams,
    repeats: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        for q in queries {
            black_box(engine.search(black_box(q), params));
        }
        best = best.min(t.elapsed().as_secs_f64() / queries.len() as f64 * 1e6);
    }
    best
}

fn bench_trace_overhead(c: &mut Criterion) {
    c.bench_function("trace_overhead_record", |b| b.iter(|| 0));

    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(51);
    let model = ModelKind::Itq.train(ds.as_slice(), ds.dim(), 10, 0);
    let table: HashTable = HashTable::build(model.as_ref(), ds.as_slice(), ds.dim());
    let (n_queries, repeats) = if smoke() { (100, 5) } else { (400, 9) };
    let queries = ds.sample_queries(n_queries, 9);
    let params = SearchParams::for_k(20)
        .candidates(200)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .build()
        .expect("valid search params");

    // Tracing off: the registry records aggregates, every trace_begin
    // returns the disabled context, span calls are a single branch.
    let metrics_off = MetricsRegistry::enabled();
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim())
        .with_metrics(metrics_off.clone());
    best_pass_us(&engine, &queries, &params, 2); // warm-up
    let off_us = best_pass_us(&engine, &queries, &params, repeats);

    // Tracing enabled, queries unsampled: one fetch-add per query at
    // admission decides "not sampled"; everything downstream stays
    // branch-only. Query ordinal 0 is always sampled (0 is a multiple of
    // every period), so burn it before timing.
    let metrics_unsampled = MetricsRegistry::enabled();
    metrics_unsampled.enable_tracing(TraceConfig {
        sample_every: u64::MAX,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim())
        .with_metrics(metrics_unsampled.clone());
    black_box(engine.search(&queries[0], &params));
    best_pass_us(&engine, &queries, &params, 2); // warm-up
    let unsampled_us = best_pass_us(&engine, &queries, &params, repeats);

    // Every query sampled: full span tree, per-probe QD steps, ring push.
    let metrics_sampled = MetricsRegistry::enabled();
    metrics_sampled.enable_tracing(TraceConfig {
        sample_every: 1,
        ..TraceConfig::default()
    });
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim())
        .with_metrics(metrics_sampled.clone());
    best_pass_us(&engine, &queries, &params, 2); // warm-up
    let sampled_us = best_pass_us(&engine, &queries, &params, repeats);

    let pct = |mode_us: f64| ((mode_us - off_us) / off_us * 100.0).max(0.0);
    let unsampled_pct = pct(unsampled_us);
    let sampled_pct = pct(sampled_us);
    let gate_pass = unsampled_pct <= 2.0;

    println!(
        "trace_overhead: off={off_us:.2}us unsampled={unsampled_us:.2}us (+{unsampled_pct:.2}%) \
         sampled={sampled_us:.2}us (+{sampled_pct:.2}%) gate_pass={gate_pass}"
    );
    assert!(
        metrics_sampled
            .tracing()
            .expect("tracing enabled")
            .store()
            .pushed()
            > 0,
        "sampled mode must actually record traces"
    );

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"dataset\": \"cifar60k_smoke\",\n  \
         \"queries\": {n_queries},\n  \"repeats\": {repeats},\n  \
         \"tracing_off_us\": {off_us:.3},\n  \
         \"tracing_unsampled_us\": {unsampled_us:.3},\n  \
         \"tracing_sampled_us\": {sampled_us:.3},\n  \
         \"unsampled_overhead_pct\": {unsampled_pct:.3},\n  \
         \"sampled_overhead_pct\": {sampled_pct:.3},\n  \
         \"gate_threshold_pct\": 2.0,\n  \"gate_pass\": {gate_pass}\n}}\n"
    );
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let out = out_dir.join("BENCH_trace.json");
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("trace_overhead: could not write {}: {e}", out.display());
        } else {
            println!("trace_overhead: baseline recorded to {}", out.display());
        }
    }
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
