//! Per-bucket generation cost of the four probers — the mechanism behind
//! Figs 6 and 7: HR/QR pay an upfront sort over all occupied buckets, GHR
//! and GQR produce buckets on demand.
//!
//! `first_bucket` measures the slow start (reset + one bucket);
//! `next_1000` measures steady-state generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gqr_core::probe::{
    GenerateHammingRanking, GenerateQdRanking, HammingRanking, Prober, QdRanking,
};
use gqr_core::table::HashTable;
use gqr_l2h::QueryEncoding;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A table with `buckets` random occupied codes in an `m`-bit space.
fn random_table(m: usize, buckets: usize, seed: u64) -> HashTable {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let span = 1u64 << m;
    let codes: Vec<u64> = (0..buckets).map(|_| rng.gen_range(0..span)).collect();
    HashTable::from_codes(m, &codes)
}

fn query(m: usize, seed: u64) -> QueryEncoding {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    QueryEncoding {
        code: rng.gen_range(0..(1u64 << m)),
        flip_costs: (0..m).map(|_| rng.gen::<f64>() * 2.0).collect(),
    }
}

fn bench_first_bucket(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_bucket");
    group.sample_size(20);
    for &(m, buckets) in &[(14usize, 4_000usize), (18, 60_000), (20, 200_000)] {
        let table = random_table(m, buckets, 1);
        let q = query(m, 2);
        group.bench_with_input(BenchmarkId::new("HR", buckets), &(), |b, _| {
            let mut p = HammingRanking::new(&table);
            b.iter(|| {
                p.reset(&q);
                black_box(p.next_bucket())
            })
        });
        group.bench_with_input(BenchmarkId::new("QR", buckets), &(), |b, _| {
            let mut p = QdRanking::new(&table);
            b.iter(|| {
                p.reset(&q);
                black_box(p.next_bucket())
            })
        });
        group.bench_with_input(BenchmarkId::new("GHR", buckets), &(), |b, _| {
            let mut p = GenerateHammingRanking::new(m);
            b.iter(|| {
                p.reset(&q);
                black_box(p.next_bucket())
            })
        });
        group.bench_with_input(BenchmarkId::new("GQR", buckets), &(), |b, _| {
            let mut p = GenerateQdRanking::new(m);
            b.iter(|| {
                p.reset(&q);
                black_box(p.next_bucket())
            })
        });
    }
    group.finish();
}

fn bench_next_1000(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_1000_buckets");
    group.sample_size(20);
    let m = 20;
    let q = query(m, 3);
    group.bench_function("GHR", |b| {
        let mut p = GenerateHammingRanking::new(m);
        b.iter(|| {
            p.reset(&q);
            for _ in 0..1000 {
                black_box(p.next_bucket());
            }
        })
    });
    group.bench_function("GQR", |b| {
        let mut p = GenerateQdRanking::new(m);
        b.iter(|| {
            p.reset(&q);
            for _ in 0..1000 {
                black_box(p.next_bucket());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_first_bucket, bench_next_1000);
criterion_main!(benches);
