//! Popcount-kernel benchmark across the generic code widths: scalar
//! reference vs the dispatched Hamming batch kernel at m ∈ {32, 64, 128,
//! 256} (1-, 1-, 2-, and 4-block codes), plus a wide-code end-to-end query
//! latency row over a 128-bit table.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink iteration counts for CI smoke runs;
//! the baseline section self-times both paths and records
//! `results/BENCH_hamming.json` (plain `std` formatting — no JSON
//! dependency). Its `gate_pass` field requires the dispatched kernel to be
//! ≥ 1.5x the scalar path at m = 128 when the AVX2 popcount is active; on
//! scalar-only hardware or under `GQR_FORCE_SCALAR=1` the gate is waived
//! (both paths are the same code, so there is no speedup to demand).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gqr_core::engine::{QueryEngine, SearchParams};
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use gqr_linalg::kernels::{self, active_kernel, hamming_batch, scalar, KernelKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Blocks backing an m-bit code (m = 32 still occupies one u64 block).
fn blocks_for(m: usize) -> usize {
    m.div_ceil(64).max(1)
}

fn random_codes(rng: &mut ChaCha8Rng, n: usize, m: usize) -> Vec<u64> {
    let blocks = blocks_for(m);
    let top_mask = if m.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (m % 64)) - 1
    };
    (0..n * blocks)
        .map(|i| {
            let word: u64 = rng.gen();
            // Zero the bits above m in the last block of each code, as the
            // encoders do.
            if i % blocks == blocks - 1 {
                word & top_mask
            } else {
                word
            }
        })
        .collect()
}

fn bench_hamming_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let rows_n = if smoke() { 256 } else { 4096 };
    for &m in &[32usize, 64, 128, 256] {
        let blocks = blocks_for(m);
        let q = random_codes(&mut rng, 1, m);
        let codes = random_codes(&mut rng, rows_n, m);
        let mut out = vec![0u32; rows_n];
        group.throughput(Throughput::Elements(rows_n as u64));
        group.bench_with_input(BenchmarkId::new("scalar_rows", m), &m, |bench, _| {
            bench.iter(|| {
                let mut acc = 0u32;
                for row in codes.chunks_exact(blocks) {
                    acc += scalar::hamming_row(black_box(&q), black_box(row));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("dispatched_batch", m), &m, |bench, _| {
            bench.iter(|| {
                hamming_batch(black_box(&q), black_box(&codes), &mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

/// Self-timed scalar-vs-dispatched popcount baseline plus a wide-code query
/// latency row, recorded to `results/BENCH_hamming.json`. Runs in every
/// environment (the criterion harness may be stubbed in offline CI; this
/// section only needs `std`).
fn bench_hamming_baseline(c: &mut Criterion) {
    c.bench_function("hamming_baseline_record", |b| b.iter(|| 0));

    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let rows_n = if smoke() { 2048 } else { 16384 };
    let reps = if smoke() { 50 } else { 400 };
    let mut lines = Vec::new();
    let mut speedup_128 = 0.0f64;
    for &m in &[32usize, 64, 128, 256] {
        let blocks = blocks_for(m);
        let q = random_codes(&mut rng, 1, m);
        let codes = random_codes(&mut rng, rows_n, m);
        let mut out = vec![0u32; rows_n];

        // Warm both paths, then time scalar row scan vs dispatched batch.
        let mut sink = 0u64;
        for row in codes.chunks_exact(blocks) {
            sink += u64::from(scalar::hamming_row(&q, row));
        }
        hamming_batch(&q, &codes, &mut out);
        let t = Instant::now();
        for _ in 0..reps {
            for row in codes.chunks_exact(blocks) {
                sink += u64::from(scalar::hamming_row(black_box(&q), black_box(row)));
            }
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / (reps * rows_n) as f64;
        let t = Instant::now();
        for _ in 0..reps {
            hamming_batch(black_box(&q), black_box(&codes), &mut out);
            sink += u64::from(out[0]);
        }
        let batch_ns = t.elapsed().as_nanos() as f64 / (reps * rows_n) as f64;
        black_box(sink);
        let speedup = scalar_ns / batch_ns;
        if m == 128 {
            speedup_128 = speedup;
        }
        println!(
            "hamming: m={m} kernel={} scalar_row={scalar_ns:.2}ns/row \
             dispatched_batch={batch_ns:.2}ns/row speedup={speedup:.2}x",
            kernels::kernel_name()
        );
        lines.push(format!(
            "    {{\"m\": {m}, \"rows\": {rows_n}, \"scalar_row_ns\": {scalar_ns:.2}, \
             \"dispatched_batch_ns\": {batch_ns:.2}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // Wide-code end-to-end latency: Hamming-ranking search over a 128-bit
    // table, the path a `serve --snapshot wide.gqr` deployment exercises.
    let (n, dim, m, n_queries) = if smoke() {
        (2000usize, 16usize, 128usize, 20usize)
    } else {
        (20_000, 32, 128, 100)
    };
    let data: Vec<f32> = (0..n * dim).map(|_| rng.gen()).collect();
    let model = Lsh::train(&data, dim, m, 41).unwrap();
    let table: HashTable<u128> = HashTable::build(&model, &data, dim);
    let engine = QueryEngine::new(&model, &table, &data, dim);
    let params = SearchParams::for_k(10)
        .candidates(200)
        .max_buckets(SearchParams::DEFAULT_BUCKET_CAP)
        .strategy(gqr_core::engine::ProbeStrategy::HammingRanking)
        .build()
        .unwrap();
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| (0..dim).map(|_| rng.gen()).collect())
        .collect();
    for q in &queries {
        black_box(engine.search(q, &params));
    }
    let t = Instant::now();
    for q in &queries {
        black_box(engine.search(q, &params));
    }
    let query_us = t.elapsed().as_micros() as f64 / n_queries as f64;
    println!(
        "hamming: wide query m={m} n={n} kernel={} hr_latency={query_us:.1}us/query",
        kernels::kernel_name()
    );

    // Gate: demand the SIMD speedup only where SIMD is actually running.
    let simd_active = active_kernel() == KernelKind::Avx2Fma;
    let gate_pass = !simd_active || speedup_128 >= 1.5;
    let json = format!(
        "{{\n  \"bench\": \"hamming\",\n  \"kernel\": \"{}\",\n  \
         \"gate\": \"dispatched >= 1.5x scalar at m=128 when AVX2 active\",\n  \
         \"simd_active\": {simd_active},\n  \"speedup_m128\": {speedup_128:.3},\n  \
         \"gate_pass\": {gate_pass},\n  \
         \"wide_query\": {{\"m\": {m}, \"n\": {n}, \"k\": 10, \"strategy\": \"HR\", \
         \"latency_us\": {query_us:.2}}},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        kernels::kernel_name(),
        lines.join(",\n")
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_hamming.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("hamming: could not write {}: {e}", path.display());
        } else {
            println!("hamming: baseline recorded to {}", path.display());
        }
    }
}

criterion_group!(benches, bench_hamming_widths, bench_hamming_baseline);
criterion_main!(benches);
