//! Trainer cost comparison — the mechanism behind Table 2: PCAH trains in
//! one eigendecomposition, ITQ adds rotation iterations, OPQ pays k-means
//! per subspace per round.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_bench::models::ModelKind;
use gqr_bench::runner::{OpqImiConfig, OpqImiEngine};
use gqr_dataset::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_trainers(c: &mut Criterion) {
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(31);
    let data = ds.as_slice();
    let (dim, m) = (ds.dim(), 10);

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for kind in [
        ModelKind::Pcah,
        ModelKind::Itq,
        ModelKind::Sh,
        ModelKind::Kmh,
        ModelKind::Lsh,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(kind.train(data, dim, m, 1)))
        });
    }
    group.bench_function("OPQ+IMI", |b| {
        b.iter(|| {
            black_box(OpqImiEngine::train(
                data,
                dim,
                &OpqImiConfig {
                    imi_k: 32,
                    pq_ks: 32,
                    opq_rounds: 2,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trainers);
criterion_main!(benches);
