//! Micro-kernels of QD ranking: quantization-distance evaluation, sign
//! quantization, and query encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gqr_core::code::{hamming, quantization_distance};
use gqr_l2h::{sign_code, HashModel, QueryEncoding};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_qd_vs_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("indicator_eval");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for &m in &[16usize, 32, 64] {
        let span_mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        let q = QueryEncoding {
            code: rng.gen::<u64>() & span_mask,
            flip_costs: (0..m).map(|_| rng.gen::<f64>()).collect(),
        };
        let buckets: Vec<u64> = (0..1024).map(|_| rng.gen::<u64>() & span_mask).collect();
        group.bench_with_input(BenchmarkId::new("qd", m), &(), |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for &bk in &buckets {
                    acc += quantization_distance(black_box(&q), black_box(bk));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("hamming", m), &(), |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for &bk in &buckets {
                    acc += hamming(black_box(q.code), black_box(bk));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let dim = 128;
    let n = 2000;
    let data: Vec<f32> = (0..n * dim).map(|_| rng.gen::<f32>() - 0.5).collect();
    let model = gqr_l2h::pcah::Pcah::train(&data, dim, 16).unwrap();
    let x: Vec<f32> = (0..dim).map(|_| rng.gen::<f32>()).collect();

    group.bench_function("pcah_encode_item", |b| {
        b.iter(|| black_box(model.encode(black_box(&x))))
    });
    group.bench_function("pcah_encode_query", |b| {
        b.iter(|| black_box(model.encode_query(black_box(&x))))
    });
    let proj: Vec<f64> = (0..16).map(|_| rng.gen::<f64>() - 0.5).collect();
    group.bench_function("sign_code", |b| {
        b.iter(|| black_box(sign_code(black_box(&proj))))
    });
    group.finish();
}

criterion_group!(benches, bench_qd_vs_hamming, bench_encode);
criterion_main!(benches);
