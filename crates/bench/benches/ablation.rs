//! Ablations of this implementation's design choices (DESIGN.md):
//!
//! * **Theorem-2 early stop** on/off — same results, fewer buckets.
//! * **Identity-style `CodeHasher`** vs SipHash for bucket lookup — the
//!   table is on the per-probe hot path.
//! * **GQR reset cost** (per-query argsort of flipping costs) as a function
//!   of code length — the price GQR pays instead of QR's full bucket sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gqr_bench::models::ModelKind;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::probe::{GenerateQdRanking, Prober};
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use gqr_l2h::QueryEncoding;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_early_stop(c: &mut Criterion) {
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(61);
    let model = ModelKind::Itq.train(ds.as_slice(), ds.dim(), 10, 0);
    let table: HashTable = HashTable::build(model.as_ref(), ds.as_slice(), ds.dim());
    let engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim());
    let q = ds.sample_queries(1, 5).remove(0);

    let mut group = c.benchmark_group("early_stop_ablation");
    group.sample_size(40);
    for (label, early_stop) in [("off", false), ("on", true)] {
        let params = SearchParams::for_k(10)
            .candidates(1_000)
            .strategy(ProbeStrategy::GenerateQdRanking)
            .early_stop(early_stop)
            .build()
            .expect("valid search params");
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.search(black_box(&q), &params)))
        });
    }
    group.finish();
}

fn bench_code_hasher(c: &mut Criterion) {
    // 60k codes in a 16-bit space, 4096 random lookups per iteration.
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let codes: Vec<u64> = (0..60_000)
        .map(|_| rng.gen_range(0..(1u64 << 16)))
        .collect();
    let lookups: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..(1u64 << 16))).collect();

    let fast = HashTable::from_codes(16, &codes);
    let mut sip: HashMap<u64, Vec<u32>> = HashMap::new();
    for (i, &code) in codes.iter().enumerate() {
        sip.entry(code).or_default().push(i as u32);
    }

    let mut group = c.benchmark_group("bucket_lookup_hasher");
    group.sample_size(50);
    group.bench_function("code_hasher", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &l in &lookups {
                acc += fast.bucket(l).len();
            }
            black_box(acc)
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &l in &lookups {
                acc += sip.get(&l).map(Vec::len).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_gqr_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("gqr_reset_cost");
    group.sample_size(50);
    let mut rng = ChaCha8Rng::seed_from_u64(81);
    for &m in &[12usize, 20, 32, 64] {
        let q = QueryEncoding {
            code: rng.gen::<u64>() & if m == 64 { u64::MAX } else { (1u64 << m) - 1 },
            flip_costs: (0..m).map(|_| rng.gen::<f64>()).collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut p = GenerateQdRanking::new(m);
            b.iter(|| {
                p.reset(black_box(&q));
                black_box(p.peek_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_early_stop,
    bench_code_hasher,
    bench_gqr_reset
);
criterion_main!(benches);
