//! Single-query end-to-end latency at a fixed candidate budget, per
//! querying method — the microscopic version of the Fig 7 comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_bench::models::ModelKind;
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(51);
    let model = ModelKind::Itq.train(ds.as_slice(), ds.dim(), 10, 0);
    let table: HashTable = HashTable::build(model.as_ref(), ds.as_slice(), ds.dim());
    let mut engine = QueryEngine::new(model.as_ref(), &table, ds.as_slice(), ds.dim());
    engine.enable_mih(2);
    let q = ds.sample_queries(1, 9).remove(0);

    let mut group = c.benchmark_group("search_200_candidates");
    group.sample_size(50);
    for strategy in [
        ProbeStrategy::HammingRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::MultiIndexHashing { blocks: 2 },
    ] {
        let params = SearchParams::for_k(20)
            .candidates(200)
            .strategy(strategy)
            .build()
            .expect("valid search params");
        group.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(engine.search(black_box(&q), &params)))
        });
    }
    // GQR with the Theorem-2 early stop.
    let params = SearchParams::for_k(20)
        .candidates(200)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .early_stop(true)
        .build()
        .expect("valid search params");
    group.bench_function("GQR+early_stop", |b| {
        b.iter(|| black_box(engine.search(black_box(&q), &params)))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
