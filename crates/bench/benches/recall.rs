//! Adaptive recall controller benchmark: probe savings at a fixed SLA.
//!
//! Headline number for the recall-target feature: on a clustered dataset
//! (heterogeneous query difficulty — the regime adaptive stopping exists
//! for), a calibrated engine asked for `recall_target(0.9)` must reach
//! measured recall@10 ≥ 0.9 while probing ≥ 25% fewer buckets per query
//! (mean across strategies) than the smallest fixed `n_candidates` budget
//! that reaches the same recall.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the dataset for CI smoke runs. The
//! self-timed section records `results/BENCH_recall.json` (plain `std`
//! formatting — no JSON dependency); its `gate_pass` field encodes the
//! 25% mean-reduction SLA gate. Bucket counts are kernel-independent, so
//! the gate holds identically under `GQR_FORCE_SCALAR=1`.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::engine::{ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::recall::Calibrator;
use gqr_core::table::HashTable;
use gqr_l2h::lsh::Lsh;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 8;
const K: usize = 10;
const M: usize = 64;
const MIH_BLOCKS: usize = 4;
const TARGET: f32 = 0.9;
const BUCKET_CAP: usize = 768;
const LADDER: [usize; 6] = [50, 100, 200, 400, 800, 1600];

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

struct Fixture {
    data: Vec<f32>,
    calib: Vec<f32>,
    eval: Vec<f32>,
}

/// Gaussian-mixture data: well-separated centers, per-cluster sizes varying
/// so query difficulty is heterogeneous (σ chosen as in the SLA conformance
/// suite: small enough that every strategy's recall ceiling clears the
/// target, large enough that cluster-boundary queries need a deeper walk).
fn clustered(n_clusters: usize, calib_per: usize, eval_per: usize) -> Fixture {
    let sigma = 0.045f32;
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let centers: Vec<f32> = (0..n_clusters * DIM)
        .map(|_| rng.gen::<f32>() * 10.0)
        .collect();
    let gauss = |rng: &mut ChaCha8Rng| -> f32 {
        let sum: f32 = (0..6).map(|_| rng.gen::<f32>()).sum();
        (sum - 3.0) * (12.0f32 / 6.0).sqrt()
    };
    let mut data = Vec::new();
    for c in 0..n_clusters {
        let size = 24 + (rng.gen::<u32>() % 32) as usize;
        for _ in 0..size {
            for d in 0..DIM {
                data.push(centers[c * DIM + d] + sigma * gauss(&mut rng));
            }
        }
    }
    let mut jittered = |n_per: usize| -> Vec<f32> {
        let mut out = Vec::new();
        for c in 0..n_clusters {
            for _ in 0..n_per {
                for d in 0..DIM {
                    out.push(centers[c * DIM + d] + sigma * gauss(&mut rng));
                }
            }
        }
        out
    };
    let calib = jittered(calib_per);
    let eval = jittered(eval_per);
    Fixture { data, calib, eval }
}

fn brute_force(data: &[f32], q: &[f32], k: usize) -> Vec<u32> {
    let mut all: Vec<(u32, f64)> = data
        .chunks_exact(DIM)
        .enumerate()
        .map(|(i, row)| {
            let d: f64 = row
                .iter()
                .zip(q)
                .map(|(a, b)| {
                    let diff = (*a - *b) as f64;
                    diff * diff
                })
                .sum();
            (i as u32, d)
        })
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all.into_iter().map(|(i, _)| i).collect()
}

/// (mean recall@K, mean buckets probed, mean latency µs) over `queries`.
fn run_queries(
    engine: &QueryEngine<'_, Lsh, u64>,
    queries: &[f32],
    gt: &[Vec<u32>],
    params: &SearchParams,
) -> (f64, f64, f64) {
    let mut recall_sum = 0.0f64;
    let mut bucket_sum = 0usize;
    let t = Instant::now();
    for (q, truth) in queries.chunks_exact(DIM).zip(gt) {
        let resp = black_box(engine.search(q, params));
        let hits = resp.ids.iter().filter(|id| truth.contains(id)).count();
        recall_sum += hits as f64 / K as f64;
        bucket_sum += resp.stats.buckets_probed;
    }
    let us = t.elapsed().as_micros() as f64;
    let n = gt.len() as f64;
    (recall_sum / n, bucket_sum as f64 / n, us / n)
}

fn bench_recall_controller(c: &mut Criterion) {
    c.bench_function("recall_controller_record", |b| b.iter(|| 0));

    let (n_clusters, calib_per, eval_per) = if smoke() { (30, 2, 2) } else { (80, 4, 4) };
    let fx = clustered(n_clusters, calib_per, eval_per);
    let model = Lsh::train(&fx.data, DIM, M, 7).unwrap();
    let table: HashTable = HashTable::build(&model, &fx.data, DIM);
    let mut engine = QueryEngine::new(&model, &table, &fx.data, DIM);
    engine.enable_mih(MIH_BLOCKS);

    let strategies = [
        ProbeStrategy::HammingRanking,
        ProbeStrategy::GenerateHammingRanking,
        ProbeStrategy::QdRanking,
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::MultiIndexHashing { blocks: MIH_BLOCKS },
    ];

    let calib_gt: Vec<Vec<u32>> = fx
        .calib
        .chunks_exact(DIM)
        .map(|q| brute_force(&fx.data, q, K))
        .collect();
    let t = Instant::now();
    let mut cal = Calibrator::new(K).bucket_cap(BUCKET_CAP);
    for strat in strategies {
        cal.observe(&engine, strat, &fx.calib, &calib_gt);
    }
    let recall_model = cal.finalize();
    let calib_ms = t.elapsed().as_millis();
    engine.set_recall_model(&recall_model);

    let eval_gt: Vec<Vec<u32>> = fx
        .eval
        .chunks_exact(DIM)
        .map(|q| brute_force(&fx.data, q, K))
        .collect();

    let mut lines = Vec::new();
    let mut reductions = Vec::new();
    let mut min_achieved = f64::INFINITY;
    for strat in strategies {
        let adaptive = SearchParams::for_k(K)
            .strategy(strat)
            .recall_target(TARGET)
            .max_buckets(BUCKET_CAP)
            .build()
            .unwrap();
        let (achieved, buckets, us) = run_queries(&engine, &fx.eval, &eval_gt, &adaptive);

        // Baseline: the smallest fixed candidate budget whose measured
        // recall reaches what the controller achieved.
        let mut baseline = None;
        for &n in &LADDER {
            let params = SearchParams::for_k(K)
                .strategy(strat)
                .candidates(n)
                .max_buckets(BUCKET_CAP)
                .build()
                .unwrap();
            let (r, b, fus) = run_queries(&engine, &fx.eval, &eval_gt, &params);
            if r >= achieved || n == *LADDER.last().unwrap() {
                baseline = Some((n, r, b, fus));
                break;
            }
        }
        let (base_n, base_recall, base_buckets, base_us) = baseline.unwrap();
        let reduction = 1.0 - buckets / base_buckets;
        reductions.push(reduction);
        min_achieved = min_achieved.min(achieved);
        println!(
            "recall: {} adaptive recall={achieved:.3} buckets/query={buckets:.1} \
             ({us:.0}us) vs fixed n={base_n} recall={base_recall:.3} \
             buckets/query={base_buckets:.1} ({base_us:.0}us) reduction={:.1}%",
            strat.name(),
            reduction * 100.0
        );
        lines.push(format!(
            "    {{\"strategy\": \"{}\", \"achieved_recall\": {achieved:.4}, \
             \"buckets_per_query\": {buckets:.2}, \"latency_us\": {us:.1}, \
             \"baseline_candidates\": {base_n}, \"baseline_recall\": {base_recall:.4}, \
             \"baseline_buckets_per_query\": {base_buckets:.2}, \
             \"baseline_latency_us\": {base_us:.1}, \"probe_reduction\": {reduction:.4}}}",
            strat.name()
        ));
    }

    let mean_reduction = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let gate_pass = min_achieved >= TARGET as f64 && mean_reduction >= 0.25;
    println!(
        "recall: mean probe reduction {:.1}% at min achieved recall {min_achieved:.3} \
         (calibration took {calib_ms}ms) gate_pass={gate_pass}",
        mean_reduction * 100.0
    );
    let json = format!(
        "{{\n  \"bench\": \"recall\",\n  \
         \"gate\": \"recall_target 0.9 reaches recall@10 >= 0.9 with >= 25% mean \
         probe reduction vs the smallest fixed budget at equal recall\",\n  \
         \"m\": {M},\n  \"k\": {K},\n  \"n_items\": {},\n  \"n_queries\": {},\n  \
         \"recall_target\": {TARGET},\n  \"calibration_ms\": {calib_ms},\n  \
         \"min_achieved_recall\": {min_achieved:.4},\n  \
         \"mean_probe_reduction\": {mean_reduction:.4},\n  \
         \"gate_pass\": {gate_pass},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        fx.data.len() / DIM,
        eval_gt.len(),
        lines.join(",\n")
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_recall.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("recall: could not write {}: {e}", path.display());
        } else {
            println!("recall: recorded to {}", path.display());
        }
    }
}

criterion_group!(benches, bench_recall_controller);
criterion_main!(benches);
