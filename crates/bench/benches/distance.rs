//! The exact re-rank kernel: squared Euclidean distance at descriptor
//! dimensionalities (Table 1's 128/384/512/960), plus scalar-vs-dispatched
//! comparisons for the runtime-dispatched kernel layer and the blocked tile
//! kernel behind `ScoreBlock`.
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink iteration counts for CI smoke runs;
//! the kernel comparison additionally self-times both paths and records a
//! `results/BENCH_kernels.json` baseline (plain `std` formatting — no JSON
//! dependency) with the measured tile speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gqr_linalg::kernels::{self, scalar, sq_dist_batch};
use gqr_linalg::vecops::sq_dist_f32;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

fn bench_sq_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("sq_dist_f32");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for &dim in &[32usize, 128, 384, 960] {
        let a: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        let b_: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| black_box(sq_dist_f32(black_box(&a), black_box(&b_))))
        });
    }
    group.finish();
}

fn bench_rerank_batch(c: &mut Criterion) {
    // Re-ranking one bucket's worth of items (the EP = 10 expectation) plus
    // a large candidate batch.
    let mut group = c.benchmark_group("rerank");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let dim = 128;
    let q: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
    for &batch in &[10usize, 1000] {
        let items: Vec<f32> = (0..batch * dim).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bench, _| {
            bench.iter(|| {
                let mut topk = gqr_core::topk::TopK::new(20);
                for (i, row) in items.chunks_exact(dim).enumerate() {
                    topk.push(sq_dist_f32(&q, row), i as u32);
                }
                black_box(topk.kth_dist())
            })
        });
    }
    group.finish();
}

/// Scalar reference vs the dispatched kernel, row-at-a-time and as a
/// contiguous tile, at the paper's SIFT (128) and GIST (960)
/// dimensionalities.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let rows_n = if smoke() { 64 } else { 1024 };
    for &dim in &[128usize, 960] {
        let q: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        let rows: Vec<f32> = (0..rows_n * dim).map(|_| rng.gen()).collect();
        let mut out = vec![0.0f32; rows_n];
        group.throughput(Throughput::Elements((rows_n * dim) as u64));
        group.bench_with_input(BenchmarkId::new("scalar_rows", dim), &dim, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for row in rows.chunks_exact(dim) {
                    acc += scalar::sq_dist(black_box(&q), black_box(row));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("dispatched_rows", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    let mut acc = 0.0f32;
                    for row in rows.chunks_exact(dim) {
                        acc += sq_dist_f32(black_box(&q), black_box(row));
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dispatched_tile", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    sq_dist_batch(black_box(&q), black_box(&rows), &mut out);
                    black_box(out[0])
                })
            },
        );
    }
    group.finish();
}

/// Self-timed scalar-vs-tile baseline, recorded to
/// `results/BENCH_kernels.json`. Runs in every environment (the criterion
/// harness may be stubbed in offline CI; this section only needs `std`).
fn bench_kernel_baseline(c: &mut Criterion) {
    c.bench_function("kernel_baseline_record", |b| b.iter(|| 0));

    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let rows_n = if smoke() { 256 } else { 2048 };
    let reps = if smoke() { 20 } else { 200 };
    let mut lines = Vec::new();
    for &dim in &[128usize, 960] {
        let q: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        let rows: Vec<f32> = (0..rows_n * dim).map(|_| rng.gen()).collect();
        let mut out = vec![0.0f32; rows_n];

        // Warm both paths, then time scalar row scan vs dispatched tile.
        let mut sink = 0.0f32;
        for row in rows.chunks_exact(dim) {
            sink += scalar::sq_dist(&q, row);
        }
        sq_dist_batch(&q, &rows, &mut out);
        let t = Instant::now();
        for _ in 0..reps {
            for row in rows.chunks_exact(dim) {
                sink += scalar::sq_dist(black_box(&q), black_box(row));
            }
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / (reps * rows_n) as f64;
        let t = Instant::now();
        for _ in 0..reps {
            sq_dist_batch(black_box(&q), black_box(&rows), &mut out);
            sink += out[0];
        }
        let tile_ns = t.elapsed().as_nanos() as f64 / (reps * rows_n) as f64;
        black_box(sink);
        let speedup = scalar_ns / tile_ns;
        println!(
            "kernels: d={dim} kernel={} scalar_row={scalar_ns:.1}ns/row \
             dispatched_tile={tile_ns:.1}ns/row speedup={speedup:.2}x",
            kernels::kernel_name()
        );
        lines.push(format!(
            "    {{\"dim\": {dim}, \"rows\": {rows_n}, \"scalar_row_ns\": {scalar_ns:.2}, \
             \"dispatched_tile_ns\": {tile_ns:.2}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // Hand-formatted JSON: the offline CI image stubs serde_json, and this
    // tiny record does not justify a real dependency.
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"kernel\": \"{}\",\n  \"measurements\": [\n{}\n  ]\n}}\n",
        kernels::kernel_name(),
        lines.join(",\n")
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_kernels.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("kernels: could not write {}: {e}", path.display());
        } else {
            println!("kernels: baseline recorded to {}", path.display());
        }
    }
}

criterion_group!(
    benches,
    bench_sq_dist,
    bench_rerank_batch,
    bench_kernel_dispatch,
    bench_kernel_baseline
);
criterion_main!(benches);
