//! The exact re-rank kernel: squared Euclidean distance at descriptor
//! dimensionalities (Table 1's 128/384/512/960).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gqr_linalg::vecops::sq_dist_f32;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_sq_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("sq_dist_f32");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for &dim in &[32usize, 128, 384, 960] {
        let a: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        let b_: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| black_box(sq_dist_f32(black_box(&a), black_box(&b_))))
        });
    }
    group.finish();
}

fn bench_rerank_batch(c: &mut Criterion) {
    // Re-ranking one bucket's worth of items (the EP = 10 expectation) plus
    // a large candidate batch.
    let mut group = c.benchmark_group("rerank");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let dim = 128;
    let q: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
    for &batch in &[10usize, 1000] {
        let items: Vec<f32> = (0..batch * dim).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bench, _| {
            bench.iter(|| {
                let mut topk = gqr_core::topk::TopK::new(20);
                for (i, row) in items.chunks_exact(dim).enumerate() {
                    topk.push(sq_dist_f32(&q, row), i as u32);
                }
                black_box(topk.kth_dist())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sq_dist, bench_rerank_batch);
criterion_main!(benches);
