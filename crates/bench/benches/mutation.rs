//! Mutation-layer throughput: insert rate into the delta segment, query
//! latency while the index is fragmented (delta + tombstones), the cost of
//! one compaction, and query latency after it. Baselines are recorded to
//! `results/BENCH_mutation.json` (hand-formatted — the offline CI image
//! stubs serde_json).
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::engine::SearchParams;
use gqr_core::live::MutableIndex;
use gqr_core::request::SearchRequest;
use gqr_dataset::{DatasetSpec, Scale};
use gqr_l2h::itq::Itq;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Self-timed churn workload. Runs in every environment (the criterion
/// harness may be stubbed in offline CI; this section only needs `std`).
fn bench_mutation_churn(c: &mut Criterion) {
    c.bench_function("mutation_churn_record", |b| b.iter(|| 0));

    let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(91);
    let bits = 10;
    let (n_inserts, n_deletes, n_queries) = if smoke() {
        (1_000, 300, 50)
    } else {
        (10_000, 3_000, 200)
    };

    let model = Itq::train(ds.as_slice(), ds.dim(), bits).unwrap();
    let index: MutableIndex<_> = MutableIndex::builder(Arc::new(model))
        .compaction_threshold(usize::MAX) // compaction timed explicitly below
        .build(ds.as_slice(), ds.dim());
    let writer = index.writer();
    let base_n = index.n_items();

    // Insert throughput: fresh rows landing in the delta segment.
    let rows: Vec<Vec<f32>> = (0..n_inserts)
        .map(|i| {
            let src = (i * 17) % base_n;
            let mut row = ds.as_slice()[src * ds.dim()..(src + 1) * ds.dim()].to_vec();
            row[0] += 0.125;
            row
        })
        .collect();
    let t = Instant::now();
    for row in &rows {
        black_box(writer.insert(row));
    }
    let insert_s = t.elapsed().as_secs_f64();
    let inserts_per_s = n_inserts as f64 / insert_s;

    // Delete throughput: tombstone the oldest third of the inserts.
    let t = Instant::now();
    for id in 0..n_deletes as u32 {
        black_box(writer.delete(base_n as u32 + id));
    }
    let delete_s = t.elapsed().as_secs_f64();
    let deletes_per_s = n_deletes as f64 / delete_s;

    // Query latency while fragmented: delta + tombstones both live.
    let params = SearchParams::for_k(10).candidates(2_000).build().unwrap();
    let queries: Vec<&[f32]> = (0..n_queries)
        .map(|i| &ds.as_slice()[(i * 31 % base_n) * ds.dim()..(i * 31 % base_n + 1) * ds.dim()])
        .collect();
    let t = Instant::now();
    for q in &queries {
        black_box(index.run(SearchRequest::new(q).params(params)));
    }
    let frag_query_us = t.elapsed().as_secs_f64() / n_queries as f64 * 1e6;

    // One explicit compaction, then the same queries against the clean base.
    let t = Instant::now();
    index.compact();
    let compact_s = t.elapsed().as_secs_f64();
    let gen = index.pin();
    assert_eq!(gen.delta_rows(), 0);
    assert_eq!(gen.n_tombstones(), 0);

    let t = Instant::now();
    for q in &queries {
        black_box(index.run(SearchRequest::new(q).params(params)));
    }
    let compacted_query_us = t.elapsed().as_secs_f64() / n_queries as f64 * 1e6;

    println!(
        "mutation: n={base_n} dim={} inserts/s={inserts_per_s:.0} deletes/s={deletes_per_s:.0} \
         fragmented_query={frag_query_us:.1}us compact={compact_s:.4}s \
         compacted_query={compacted_query_us:.1}us",
        ds.dim()
    );

    let json = format!(
        "{{\n  \"bench\": \"mutation\",\n  \"dataset\": \"audio50k_smoke\",\n  \
         \"base_rows\": {base_n},\n  \"dim\": {},\n  \"bits\": {bits},\n  \
         \"inserts\": {n_inserts},\n  \"deletes\": {n_deletes},\n  \
         \"inserts_per_second\": {inserts_per_s:.1},\n  \
         \"deletes_per_second\": {deletes_per_s:.1},\n  \
         \"fragmented_query_us\": {frag_query_us:.2},\n  \
         \"compaction_seconds\": {compact_s:.6},\n  \
         \"compacted_query_us\": {compacted_query_us:.2}\n}}\n",
        ds.dim()
    );
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let out = out_dir.join("BENCH_mutation.json");
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("mutation: could not write {}: {e}", out.display());
        } else {
            println!("mutation: baseline recorded to {}", out.display());
        }
    }
}

criterion_group!(benches, bench_mutation_churn);
criterion_main!(benches);
