//! Cold-start cost: training + building an index from scratch vs loading a
//! binary snapshot of the same index. The acceptance bar is a ≥10x
//! speedup for snapshot loads on the audio50k smoke fixture; the measured
//! ratio is recorded to `results/BENCH_snapshot.json` (hand-formatted —
//! the offline CI image stubs serde_json).
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink repetition counts for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::engine::QueryEngine;
use gqr_core::persist::{load_index, LoadedIndex};
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use gqr_l2h::itq::Itq;
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Self-timed train+build vs snapshot-load baseline. Runs in every
/// environment (the criterion harness may be stubbed in offline CI; this
/// section only needs `std`).
fn bench_snapshot_cold_start(c: &mut Criterion) {
    c.bench_function("snapshot_cold_start_record", |b| b.iter(|| 0));

    let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(77);
    let bits = 10;
    let reps = if smoke() { 2 } else { 5 };
    let dir = std::env::temp_dir().join(format!("gqr_bench_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.gqr");

    // Warm: one full train+build, persisted for the load side.
    let model = Itq::train(ds.as_slice(), ds.dim(), bits).unwrap();
    let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
    let mut engine = QueryEngine::new(&model, &table, ds.as_slice(), ds.dim());
    engine.enable_mih(2);
    let bytes = engine.save_snapshot(&path).unwrap();

    // Cold-start path A: retrain + rebuild every time.
    let t = Instant::now();
    for _ in 0..reps {
        let model = Itq::train(ds.as_slice(), ds.dim(), bits).unwrap();
        let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
        let mut engine = QueryEngine::new(&model, &table, ds.as_slice(), ds.dim());
        engine.enable_mih(2);
        black_box(engine.table().n_items());
    }
    let train_s = t.elapsed().as_secs_f64() / reps as f64;

    // Cold-start path B: load the snapshot and borrow an engine from it.
    let t = Instant::now();
    for _ in 0..reps {
        let loaded: LoadedIndex = load_index(&path).unwrap();
        let engine = QueryEngine::from_snapshot(&loaded).unwrap();
        black_box(engine.table().n_items());
    }
    let load_s = t.elapsed().as_secs_f64() / reps as f64;

    let speedup = train_s / load_s;
    println!(
        "snapshot: n={} dim={} bits={bits} train_build={train_s:.4}s \
         snapshot_load={load_s:.4}s bytes={bytes} speedup={speedup:.1}x",
        ds.n(),
        ds.dim()
    );
    assert!(
        speedup >= 10.0,
        "snapshot cold-start must be >=10x faster than retraining, measured {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"snapshot\",\n  \"dataset\": \"audio50k_smoke\",\n  \
         \"rows\": {},\n  \"dim\": {},\n  \"bits\": {bits},\n  \"snapshot_bytes\": {bytes},\n  \
         \"train_build_seconds\": {train_s:.6},\n  \"snapshot_load_seconds\": {load_s:.6},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        ds.n(),
        ds.dim()
    );
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let out = out_dir.join("BENCH_snapshot.json");
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("snapshot: could not write {}: {e}", out.display());
        } else {
            println!("snapshot: baseline recorded to {}", out.display());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_snapshot_cold_start);
criterion_main!(benches);
