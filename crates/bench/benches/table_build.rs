//! Index-construction cost: encoding a dataset and building the hash table
//! (plus the MIH side index the appendix baseline needs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gqr_bench::models::ModelKind;
use gqr_core::probe::mih::MihIndex;
use gqr_core::table::HashTable;
use gqr_dataset::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let ds = DatasetSpec::sift1m().scale(Scale::Smoke).generate(21);
    let model = ModelKind::Itq.train(ds.as_slice(), ds.dim(), 12, 0);

    let mut group = c.benchmark_group("table_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.n() as u64));
    group.bench_function(BenchmarkId::new("hash_table", ds.n()), |b| {
        b.iter(|| {
            black_box(HashTable::<u64>::build(
                model.as_ref(),
                ds.as_slice(),
                ds.dim(),
            ))
        })
    });

    let codes: Vec<u64> = ds.rows().map(|r| model.encode(r)).collect();
    group.bench_function(BenchmarkId::new("from_codes", ds.n()), |b| {
        b.iter(|| black_box(HashTable::from_codes(12, &codes)))
    });
    group.bench_function(BenchmarkId::new("mih_2_blocks", ds.n()), |b| {
        b.iter(|| black_box(MihIndex::build(12, &codes, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
