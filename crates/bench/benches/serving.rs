//! Serving-layer throughput: spawn-per-batch vs. the persistent executor.
//!
//! Replays a 1000-query stream arriving in micro-batches (the serving
//! pattern the paper's 1000-query timing loops approximate) against a
//! [`ShardedIndex`] at 1/2/4/8 shards, two ways:
//!
//! * **spawn** — fresh OS threads per micro-batch, the pre-redesign
//!   `search_batch` behaviour;
//! * **executor** — the same work fanned onto a persistent [`Executor`]
//!   (long-lived workers, bounded queue) via `run_scoped`.
//!
//! Criterion integration keeps this in the regression suite; because the
//! interesting number is the whole-stream wall clock, the bench also
//! self-times each configuration and prints a `serving:` summary line per
//! shard count (these are the numbers quoted in the PR description).
//!
//! Set `GQR_BENCH_SMOKE=1` to shrink the stream for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gqr_core::engine::{ProbeStrategy, SearchParams};
use gqr_core::executor::Executor;
use gqr_core::shard::ShardedIndex;
use gqr_dataset::{DatasetSpec, Scale};
use gqr_l2h::itq::Itq;
use std::hint::black_box;
use std::time::{Duration, Instant};

const MICRO_BATCH: usize = 10;

fn smoke() -> bool {
    std::env::var_os("GQR_BENCH_SMOKE").is_some()
}

/// Pre-redesign behaviour: every micro-batch pays thread spawn + join.
fn stream_spawn_per_batch(
    index: &ShardedIndex<'_, Itq>,
    queries: &[Vec<f32>],
    params: &SearchParams,
    threads: usize,
) -> usize {
    let mut answered = 0;
    for batch in queries.chunks(MICRO_BATCH) {
        let chunk = batch.len().div_ceil(threads);
        let mut results: Vec<Option<usize>> = vec![None; batch.len()];
        std::thread::scope(|scope| {
            for (qs, out) in batch.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (q, slot) in qs.iter().zip(out.iter_mut()) {
                        *slot = Some(index.search(q, params).len());
                    }
                });
            }
        });
        answered += results.into_iter().map(|r| r.unwrap()).sum::<usize>();
    }
    answered
}

/// Post-redesign behaviour: micro-batches ride the persistent worker pool.
fn stream_on_executor(
    exec: &Executor,
    index: &ShardedIndex<'_, Itq>,
    queries: &[Vec<f32>],
    params: &SearchParams,
) -> usize {
    let mut answered = 0;
    for batch in queries.chunks(MICRO_BATCH) {
        let mut results: Vec<Option<usize>> = vec![None; batch.len()];
        exec.run_scoped(batch.iter().zip(results.iter_mut()).map(|(q, slot)| {
            Box::new(move || {
                *slot = Some(index.search(q, params).len());
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        answered += results.into_iter().map(|r| r.unwrap()).sum::<usize>();
    }
    answered
}

fn best_of<F: FnMut() -> usize>(rounds: usize, mut f: F) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut answered = 0;
    for _ in 0..rounds {
        let t = Instant::now();
        answered = f();
        best = best.min(t.elapsed());
    }
    (best, answered)
}

fn bench_serving(c: &mut Criterion) {
    let n_queries = if smoke() { 100 } else { 1000 };
    let rounds = if smoke() { 1 } else { 3 };
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(33);
    let model = Itq::train(ds.as_slice(), ds.dim(), 12).unwrap();
    let queries = ds.sample_queries(n_queries, 17);
    let params = SearchParams::for_k(10)
        .candidates(200)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .build()
        .expect("valid search params");
    // A serving pool is sized by configuration, not probed: keep at least
    // four dispatch lanes so the spawn-per-batch path pays its real
    // thread-creation bill even on small CI boxes. Both paths get the same
    // parallelism; only thread lifetime differs.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .max(4);
    let exec = Executor::builder().workers(threads).build();

    let mut group = c.benchmark_group("serving_stream");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let index = ShardedIndex::build(&model, ds.as_slice(), ds.dim(), shards);

        let (spawn_wall, a1) = best_of(rounds, || {
            stream_spawn_per_batch(&index, &queries, &params, threads)
        });
        let (exec_wall, a2) = best_of(rounds, || {
            stream_on_executor(&exec, &index, &queries, &params)
        });
        assert_eq!(a1, a2, "both paths answer every query");
        let spawn_qps = n_queries as f64 / spawn_wall.as_secs_f64();
        let exec_qps = n_queries as f64 / exec_wall.as_secs_f64();
        eprintln!(
            "serving: shards={shards} queries={n_queries} spawn-per-batch {spawn_wall:?} \
             ({spawn_qps:.0} qps) executor {exec_wall:?} ({exec_qps:.0} qps) \
             speedup {:.2}x",
            spawn_wall.as_secs_f64() / exec_wall.as_secs_f64()
        );

        group.bench_function(format!("spawn_per_batch/shards_{shards}"), |b| {
            b.iter(|| {
                black_box(stream_spawn_per_batch(
                    &index,
                    black_box(&queries),
                    &params,
                    threads,
                ))
            })
        });
        group.bench_function(format!("executor/shards_{shards}"), |b| {
            b.iter(|| {
                black_box(stream_on_executor(
                    &exec,
                    &index,
                    black_box(&queries),
                    &params,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
