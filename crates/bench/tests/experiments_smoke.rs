//! Smoke tests: each experiment function runs end-to-end at smoke scale and
//! produces its CSV artifacts. Guards the harness itself (CLI plumbing,
//! reporters, dataset presets) — the numbers are checked elsewhere.

use gqr_bench::experiments as ex;
use gqr_bench::Config;
use gqr_dataset::Scale;
use std::path::{Path, PathBuf};

fn cfg(tag: &str) -> (Config, PathBuf) {
    let dir = std::env::temp_dir().join(format!("gqr_exp_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = Config {
        scale: Scale::Smoke,
        n_queries: 10,
        k: 5,
        seed: 7,
        out_dir: dir.to_str().unwrap().to_string(),
        threads: 1,
        trace_every: 1,
    };
    (cfg, dir)
}

fn assert_csv(dir: &Path, name: &str) {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
    assert!(text.lines().count() > 1, "{name} must have data rows");
}

#[test]
fn table1_and_fig2_produce_artifacts() {
    let (cfg, dir) = cfg("t1f2");
    ex::table1_datasets::run(&cfg).unwrap();
    ex::fig2_bucket_counts::run(&cfg).unwrap();
    assert_csv(&dir, "table1_datasets.csv");
    assert_csv(&dir, "fig2_bucket_counts.csv");
    // Fig 2 is exact: check one binomial.
    let text = std::fs::read_to_string(dir.join("fig2_bucket_counts.csv")).unwrap();
    assert!(text.contains("20,10,184756"), "C(20,10) row present");
}

#[test]
fn fig6_curves_have_expected_labels() {
    let (cfg, dir) = cfg("f6");
    ex::fig6_gqr_vs_qr::run(&cfg).unwrap();
    assert_csv(&dir, "fig6_gqr_vs_qr_time_at_recall.csv");
    let text = std::fs::read_to_string(dir.join("fig6_gqr_vs_qr_cifar60k_sim.csv")).unwrap();
    assert!(text.contains("GQR,") && text.contains("QR,"));
    // cfg() enables tracing (`trace_every: 1`), so the trace artifacts must
    // land beside the metrics exports.
    let traces =
        std::fs::read_to_string(dir.join("trace_fig6_gqr_vs_qr_cifar60k_sim.jsonl")).unwrap();
    assert!(!traces.is_empty(), "sampled queries must record traces");
    let chrome =
        std::fs::read_to_string(dir.join("trace_fig6_gqr_vs_qr_cifar60k_sim.chrome.json")).unwrap();
    assert!(chrome.contains("\"traceEvents\""));
}

#[test]
fn fig4_reports_precision_column() {
    let (cfg, dir) = cfg("f4");
    ex::fig4_hr_code_length::run(&cfg).unwrap();
    let text = std::fs::read_to_string(dir.join("fig4_hr_code_length_cifar60k_sim.csv")).unwrap();
    assert!(text.starts_with("label,budget,recall,precision"));
    assert!(text.contains("HR-"));
}

#[test]
fn fig17_includes_all_three_pipelines() {
    let (cfg, dir) = cfg("f17");
    ex::fig17_opq::run(&cfg).unwrap();
    let text = std::fs::read_to_string(dir.join("fig17_opq_cifar60k_sim.csv")).unwrap();
    for label in ["PCAH+GQR", "PCAH+GHR", "OPQ+IMI"] {
        assert!(text.contains(label), "missing {label}");
    }
}

#[test]
fn ext_mplsh_counts_overheads() {
    let (cfg, dir) = cfg("extm");
    ex::ext_mplsh::run(&cfg).unwrap();
    let text = std::fs::read_to_string(dir.join("ext_mplsh_vs_gqr.csv")).unwrap();
    assert!(text.starts_with("dataset,budget,itq_gqr_recall"));
    assert!(text.lines().count() >= 4);
}
