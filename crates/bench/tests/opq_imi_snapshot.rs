//! OPQ+IMI comparator snapshot round-trips: the reloaded engine must
//! produce bit-identical checkpoints to the in-memory original, for both
//! re-rank modes, and reject inconsistent data shapes.

use gqr_bench::runner::{OpqImiConfig, OpqImiEngine, RerankMode};
use gqr_dataset::{DatasetSpec, Scale};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gqr_opqimi_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn roundtrip_matches(rerank: RerankMode, tag: &str) {
    let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(77);
    let cfg = OpqImiConfig {
        pq_subspaces: 2,
        pq_ks: 16,
        opq_rounds: 2,
        imi_k: 16,
        seed: 5,
        train_rows: 2_000,
        rerank,
    };
    let engine = OpqImiEngine::train(ds.as_slice(), ds.dim(), &cfg);
    let path = tmpdir(tag).join("opq_imi.gqr");
    engine.save_snapshot(&path).unwrap();
    let engine2 = OpqImiEngine::from_snapshot(&path, ds.as_slice(), ds.dim()).unwrap();

    for q in ds.sample_queries(10, 21) {
        let a = engine.search_traced(&q, 10, &[100, 400]);
        let b = engine2.search_traced(&q, 10, &[100, 400]);
        assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.budget, cb.budget);
            assert_eq!(ca.items_evaluated, cb.items_evaluated);
            assert_eq!(
                ca.top_ids, cb.top_ids,
                "{rerank:?} diverged after round-trip"
            );
        }
    }
}

#[test]
fn exact_rerank_roundtrip_is_bit_identical() {
    roundtrip_matches(RerankMode::Exact, "exact");
}

#[test]
fn adc_rerank_roundtrip_is_bit_identical() {
    roundtrip_matches(RerankMode::Adc, "adc");
}

#[test]
fn from_snapshot_rejects_mismatched_data() {
    let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(77);
    let cfg = OpqImiConfig {
        pq_subspaces: 2,
        pq_ks: 16,
        opq_rounds: 1,
        imi_k: 8,
        seed: 5,
        train_rows: 1_000,
        rerank: RerankMode::Adc,
    };
    let engine = OpqImiEngine::train(ds.as_slice(), ds.dim(), &cfg);
    let path = tmpdir("mismatch").join("opq_imi.gqr");
    engine.save_snapshot(&path).unwrap();
    // Wrong dimensionality must be caught before any search runs.
    let wrong_dim = OpqImiEngine::from_snapshot(&path, ds.as_slice(), ds.dim() + 1);
    assert!(wrong_dim.is_err(), "dim mismatch must be rejected");
    // ADC codes must cover exactly n rows; a truncated dataset disagrees.
    let truncated = &ds.as_slice()[..(ds.n() / 2) * ds.dim()];
    let wrong_rows = OpqImiEngine::from_snapshot(&path, truncated, ds.dim());
    assert!(wrong_rows.is_err(), "row-count mismatch must be rejected");
}
