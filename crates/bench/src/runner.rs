//! Shared measurement runners: budget ladders, per-strategy curves, the
//! multi-table runner, and the OPQ+IMI comparator engine.

use crate::context::ExperimentContext;
use gqr_core::engine::{Checkpoint, ProbeStrategy, QueryEngine, SearchParams};
use gqr_core::metrics::{MetricsRegistry, Phase, PhaseSpans};
use gqr_core::multi_table::MultiTableIndex;
use gqr_core::persist::{PersistError, SectionKind, SnapshotFile, SnapshotWriter};
use gqr_core::request::SearchRequest;
use gqr_core::table::HashTable;
use gqr_core::topk::TopK;
use gqr_eval::curve::{recall_time_curve, RecallCurve};
use gqr_l2h::HashModel;
use gqr_linalg::kernels::ScoreBlock;
use gqr_linalg::vecops::Metric;
use gqr_vq::imi::{ImiOptions, InvertedMultiIndex};
use gqr_vq::kmeans::KMeansOptions;
use gqr_vq::opq::{Opq, OpqOptions};
use gqr_vq::pq::PqOptions;
use std::time::Instant;

/// Geometric ladder of candidate budgets from `~n/1000` up to `frac·n`,
/// the x-axis resolution of every recall curve.
pub fn budget_ladder(n: usize, k: usize, frac: f64) -> Vec<usize> {
    let max = ((n as f64 * frac) as usize).max(k + 1).min(n);
    let mut budgets = Vec::new();
    // Start fine enough to resolve small-k operating points (Fig 11's k = 1
    // reaches 90% recall within a couple of buckets).
    let mut b = (n / 5000).max(k).max(10);
    while b < max {
        budgets.push(b);
        b = (b as f64 * 1.6).ceil() as usize;
    }
    budgets.push(max);
    budgets.dedup();
    budgets
}

/// Measure one strategy's recall–time curve on a prepared context.
pub fn strategy_curve(
    label: impl Into<String>,
    engine: &QueryEngine<'_, dyn HashModel + '_>,
    strategy: ProbeStrategy,
    ctx: &ExperimentContext,
    k: usize,
    budgets: &[usize],
) -> RecallCurve {
    let params = SearchParams::for_k(k)
        .candidates(usize::MAX)
        .strategy(strategy)
        .build()
        .expect("valid search params");
    recall_time_curve(label, &ctx.queries, &ctx.ground_truth, budgets, |q, b| {
        let full = SearchParams {
            n_candidates: *b.last().expect("budgets non-empty"),
            ..params
        };
        engine
            .run(SearchRequest::new(q).params(full).checkpoints(b))
            .checkpoints
    })
}

/// Multi-table recall–time curve. `MultiTableIndex::search` has no traced
/// variant, so each budget is timed as an independent search — the paper's
/// methodology (a batch per operating point), just costlier; budgets ladders
/// for multi-table figures are kept short.
pub fn multi_table_curve(
    label: impl Into<String>,
    index: &MultiTableIndex<'_>,
    strategy: ProbeStrategy,
    ctx: &ExperimentContext,
    k: usize,
    budgets: &[usize],
) -> RecallCurve {
    recall_time_curve(label, &ctx.queries, &ctx.ground_truth, budgets, |q, bs| {
        bs.iter()
            .map(|&b| {
                let params = SearchParams::for_k(k)
                    .candidates(b)
                    .strategy(strategy)
                    .build()
                    .expect("valid search params");
                let start = Instant::now();
                let res = index.search(q, &params);
                Checkpoint {
                    budget: b,
                    items_evaluated: res.stats.items_evaluated,
                    buckets_probed: res.stats.buckets_probed,
                    elapsed: start.elapsed(),
                    top_ids: res.ids.clone(),
                }
            })
            .collect()
    })
}

/// How OPQ+IMI scores candidates before the top-k cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RerankMode {
    /// Exact distances on the original vectors — the same evaluation the
    /// L2H pipelines get, so recall-per-candidate comparisons are apples to
    /// apples (used for Figs 17/21/22).
    Exact,
    /// Asymmetric distance computation on the stored PQ codes — what a
    /// production OPQ+IMI deployment does; cheaper per candidate, lossier.
    Adc,
}

/// The §6.5 comparator: OPQ rotation + inverted multi-index retrieval +
/// candidate re-rank ([`RerankMode`]).
pub struct OpqImiEngine<'a> {
    opq: Opq,
    imi: InvertedMultiIndex,
    data: &'a [f32],
    dim: usize,
    rerank: RerankMode,
    /// PQ codes per item (row-major n × m_pq), present when `rerank == Adc`.
    codes: Vec<u8>,
    code_len: usize,
    metrics: MetricsRegistry,
}

/// Configuration for [`OpqImiEngine::train`].
#[derive(Clone, Debug)]
pub struct OpqImiConfig {
    /// PQ subspaces for the OPQ codebooks.
    pub pq_subspaces: usize,
    /// PQ codebook size.
    pub pq_ks: usize,
    /// OPQ alternating rounds.
    pub opq_rounds: usize,
    /// IMI codebook size per half (`K`; the index has `K²` cells).
    pub imi_k: usize,
    /// Training seed.
    pub seed: u64,
    /// Rows used for OPQ training (subsampled for speed, like the paper's
    /// training sets).
    pub train_rows: usize,
    /// Candidate scoring mode.
    pub rerank: RerankMode,
}

impl Default for OpqImiConfig {
    fn default() -> Self {
        OpqImiConfig {
            pq_subspaces: 4,
            pq_ks: 64,
            opq_rounds: 4,
            imi_k: 64,
            seed: 0,
            train_rows: 20_000,
            rerank: RerankMode::Exact,
        }
    }
}

impl<'a> OpqImiEngine<'a> {
    /// Train OPQ on (a subsample of) `data`, rotate everything, and build
    /// the inverted multi-index over the rotated vectors.
    pub fn train(data: &'a [f32], dim: usize, cfg: &OpqImiConfig) -> OpqImiEngine<'a> {
        let n = data.len() / dim;
        let train = if cfg.train_rows > 0 && n > cfg.train_rows {
            let stride = n / cfg.train_rows;
            let mut t = Vec::with_capacity(cfg.train_rows * dim);
            for i in (0..n).step_by(stride.max(1)).take(cfg.train_rows) {
                t.extend_from_slice(&data[i * dim..(i + 1) * dim]);
            }
            t
        } else {
            data.to_vec()
        };
        let opq = Opq::train(
            &train,
            dim,
            cfg.pq_subspaces,
            &OpqOptions {
                rounds: cfg.opq_rounds,
                pq: PqOptions {
                    ks: cfg.pq_ks.min(train.len() / dim),
                    kmeans: KMeansOptions {
                        seed: cfg.seed,
                        max_iters: 15,
                        ..Default::default()
                    },
                },
            },
        );
        // Rotate the full dataset once and index it.
        let mut rotated = Vec::with_capacity(data.len());
        for row in data.chunks_exact(dim) {
            rotated.extend_from_slice(&opq.rotate(row));
        }
        let imi = InvertedMultiIndex::build(
            &rotated,
            dim,
            &ImiOptions {
                k: cfg.imi_k.min(n),
                kmeans: KMeansOptions {
                    seed: cfg.seed ^ 0x1111,
                    max_iters: 15,
                    threads: 0,
                    ..Default::default()
                },
            },
        );
        // PQ codes for ADC re-ranking (over the rotated vectors, so the
        // query-side table is built from the rotated query).
        let (codes, code_len) = if cfg.rerank == RerankMode::Adc {
            let m_pq = opq.pq().n_subspaces();
            let mut codes = Vec::with_capacity(n * m_pq);
            for row in rotated.chunks_exact(dim) {
                codes.extend_from_slice(&opq.pq().encode(row));
            }
            (codes, m_pq)
        } else {
            (Vec::new(), 0)
        };
        OpqImiEngine {
            opq,
            imi,
            data,
            dim,
            rerank: cfg.rerank,
            codes,
            code_len,
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attach a metrics registry; `search_traced` then records phase spans
    /// under component `gqr_imi`, strategy `OPQ+IMI`.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Persist the trained comparator — OPQ codebooks, the inverted
    /// multi-index, and (for ADC) the stored PQ codes — as a crash-safe
    /// snapshot at `path`. Returns the bytes written. The raw vectors are
    /// not included; [`OpqImiEngine::from_snapshot`] borrows them again.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<u64, PersistError> {
        let mut snap = SnapshotWriter::new();
        snap.add_opq(&self.opq);
        snap.add_imi(&self.imi);
        let mut w = gqr_linalg::wire::ByteWriter::new();
        w.put_u8(match self.rerank {
            RerankMode::Exact => 0,
            RerankMode::Adc => 1,
        });
        w.put_usize(self.code_len);
        w.put_usize(self.codes.len());
        w.put_bytes(&self.codes);
        snap.add_section(SectionKind::PqCodes, w.into_bytes());
        snap.write(path)
    }

    /// Rebuild a comparator saved by [`OpqImiEngine::save_snapshot`],
    /// borrowing the same (unrotated) `data` it was trained over. No
    /// k-means or OPQ rounds run — codebooks, index cells, and PQ codes
    /// come straight off disk after checksum validation.
    pub fn from_snapshot(
        path: &std::path::Path,
        data: &'a [f32],
        dim: usize,
    ) -> Result<OpqImiEngine<'a>, PersistError> {
        let file = SnapshotFile::read(path)?;
        let opq = file.opq()?;
        let imi = file.imi()?;
        let bytes = file.section(SectionKind::PqCodes)?;
        let mut r = gqr_linalg::wire::ByteReader::new(bytes);
        let decode = |r: &mut gqr_linalg::wire::ByteReader<'_>| {
            use gqr_linalg::wire::WireError;
            let rerank = match r.get_u8()? {
                0 => RerankMode::Exact,
                1 => RerankMode::Adc,
                _ => return Err(WireError::Malformed("unknown rerank mode tag")),
            };
            let code_len = r.get_usize()?;
            let n_bytes = r.get_usize()?;
            let codes = r.get_bytes(n_bytes)?.to_vec();
            r.expect_end()?;
            Ok((rerank, code_len, codes))
        };
        let (rerank, code_len, codes) =
            decode(&mut r).map_err(gqr_core::persist::corrupt(SectionKind::PqCodes))?;
        let n = data.len() / dim;
        let consistent = opq.pq().dim() == dim
            && imi.dim() == dim
            && match rerank {
                RerankMode::Exact => code_len == 0 && codes.is_empty(),
                RerankMode::Adc => {
                    code_len == opq.pq().n_subspaces() && codes.len() == n * code_len
                }
            };
        if !consistent {
            return Err(PersistError::Inconsistent {
                detail: "OPQ/IMI/PQ-code sections disagree with the dataset shape",
            });
        }
        Ok(OpqImiEngine {
            opq,
            imi,
            data,
            dim,
            rerank,
            codes,
            code_len,
            metrics: MetricsRegistry::disabled(),
        })
    }

    /// Checkpointed k-NN search compatible with the curve runner: traverse
    /// IMI cells in ascending score, re-rank candidates exactly, snapshot at
    /// each budget.
    pub fn search_traced(&self, query: &[f32], k: usize, budgets: &[usize]) -> Vec<Checkpoint> {
        let start = Instant::now();
        let mut spans = PhaseSpans::new(&self.metrics);
        let t = spans.begin();
        let rotated_q = self.opq.rotate(query);
        let adc_table =
            (self.rerank == RerankMode::Adc).then(|| self.opq.pq().distance_table(&rotated_q));
        spans.end(Phase::HashQuery, t);
        let t = spans.begin();
        let mut traversal = self.imi.traverse(&rotated_q);
        spans.end(Phase::ProbeGenerate, t);
        let mut topk = TopK::new(k);
        let mut evaluated = 0usize;
        let mut cells = 0usize;
        let mut cps = Vec::with_capacity(budgets.len());
        let mut scratch = ScoreBlock::new(self.dim);

        for &budget in budgets {
            while evaluated < budget {
                let t = spans.begin();
                let next = traversal.next();
                spans.end(Phase::ProbeGenerate, t);
                let Some((u, v, _score)) = next else { break };
                cells += 1;
                let t = spans.begin();
                let cell = self.imi.cell(u, v);
                spans.end(Phase::BucketLookup, t);
                let t = spans.begin();
                match &adc_table {
                    Some(table) => {
                        for &id in cell {
                            let dist = gqr_vq::pq::ProductQuantizer::adc(
                                table,
                                &self.codes[id as usize * self.code_len
                                    ..(id as usize + 1) * self.code_len],
                            );
                            topk.push(dist, id);
                            evaluated += 1;
                        }
                    }
                    None => {
                        // Exact re-rank: gather the cell into the scratch
                        // tile and score it through the blocked kernel.
                        for &id in cell {
                            if scratch.is_full() {
                                evaluated +=
                                    scratch.flush(query, Metric::SquaredEuclidean, |id, d| {
                                        topk.push(d, id)
                                    });
                            }
                            let row =
                                &self.data[id as usize * self.dim..(id as usize + 1) * self.dim];
                            scratch.push(id, row);
                        }
                        evaluated += scratch
                            .flush(query, Metric::SquaredEuclidean, |id, d| topk.push(d, id));
                    }
                }
                spans.end(Phase::Evaluate, t);
            }
            let t = spans.begin();
            cps.push(Checkpoint {
                budget,
                items_evaluated: evaluated,
                buckets_probed: cells,
                elapsed: start.elapsed(),
                top_ids: topk.ids_unordered().collect(),
            });
            spans.end(Phase::Rerank, t);
        }
        spans.flush(&self.metrics, "gqr_imi", "OPQ+IMI", start.elapsed());
        cps
    }

    /// Recall–time curve for this engine.
    pub fn curve(
        &self,
        label: impl Into<String>,
        ctx: &ExperimentContext,
        k: usize,
        budgets: &[usize],
    ) -> RecallCurve {
        recall_time_curve(label, &ctx.queries, &ctx.ground_truth, budgets, |q, b| {
            self.search_traced(q, k, b)
        })
    }

    /// The trained OPQ model (for Table 2's memory column).
    pub fn opq(&self) -> &Opq {
        &self.opq
    }
}

/// Build a [`QueryEngine`] over a boxed model (the common pattern in the
/// experiment functions). The engine shares the context's metrics registry,
/// so every search contributes phase spans to the dataset's export.
pub fn engine_for<'e>(
    model: &'e dyn HashModel,
    table: &'e HashTable,
    ctx: &'e ExperimentContext,
) -> QueryEngine<'e, dyn HashModel + 'e> {
    QueryEngine::new(model, table, ctx.dataset.as_slice(), ctx.dim())
        .with_metrics(ctx.metrics.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Config;
    use crate::models::ModelKind;
    use gqr_dataset::{DatasetSpec, Scale};

    fn smoke_ctx() -> ExperimentContext {
        let cfg = Config {
            scale: Scale::Smoke,
            n_queries: 10,
            k: 5,
            ..Default::default()
        };
        ExperimentContext::prepare(&DatasetSpec::cifar60k(), &cfg)
    }

    #[test]
    fn ladder_is_ascending_and_bounded() {
        let b = budget_ladder(100_000, 20, 0.5);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.last().unwrap(), 50_000);
        assert!(b[0] >= 20);
    }

    #[test]
    fn ladder_small_n() {
        let b = budget_ladder(100, 20, 1.0);
        assert_eq!(*b.last().unwrap(), 100);
        assert!(!b.is_empty());
    }

    #[test]
    fn strategy_curve_reaches_full_recall_when_probing_everything() {
        let ctx = smoke_ctx();
        let model = ModelKind::Pcah.train(ctx.dataset.as_slice(), ctx.dim(), 8, 1);
        let table: HashTable = HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
        let engine = engine_for(model.as_ref(), &table, &ctx);
        let budgets = vec![50, ctx.n()];
        let curve = strategy_curve(
            "GQR",
            &engine,
            ProbeStrategy::GenerateQdRanking,
            &ctx,
            5,
            &budgets,
        );
        let last = curve.points.last().unwrap();
        assert!(
            last.recall > 0.999,
            "full probing must find everything, got {}",
            last.recall
        );
        assert!(curve.points[0].recall <= last.recall + 1e-12);
    }

    #[test]
    fn opq_imi_engine_finds_exact_knn_when_exhaustive() {
        let ctx = smoke_ctx();
        let eng = OpqImiEngine::train(
            ctx.dataset.as_slice(),
            ctx.dim(),
            &OpqImiConfig {
                imi_k: 8,
                pq_ks: 16,
                pq_subspaces: 2,
                opq_rounds: 2,
                seed: 3,
                train_rows: 0,
                ..Default::default()
            },
        );
        let budgets = vec![ctx.n()];
        let curve = eng.curve("OPQ+IMI", &ctx, 5, &budgets);
        assert!(
            curve.points[0].recall > 0.999,
            "got {}",
            curve.points[0].recall
        );
    }

    #[test]
    fn adc_rerank_is_lossy_but_useful() {
        let ctx = smoke_ctx();
        let cfg = OpqImiConfig {
            imi_k: 8,
            pq_ks: 32,
            pq_subspaces: 4,
            opq_rounds: 2,
            seed: 3,
            train_rows: 0,
            rerank: RerankMode::Adc,
        };
        let adc = OpqImiEngine::train(ctx.dataset.as_slice(), ctx.dim(), &cfg);
        let exact = OpqImiEngine::train(
            ctx.dataset.as_slice(),
            ctx.dim(),
            &OpqImiConfig {
                rerank: RerankMode::Exact,
                ..cfg
            },
        );
        let budgets = vec![ctx.n()];
        let r_adc = adc.curve("ADC", &ctx, 5, &budgets).points[0].recall;
        let r_exact = exact.curve("Exact", &ctx, 5, &budgets).points[0].recall;
        assert!(
            r_exact > 0.999,
            "exact rerank exhaustive must be perfect: {r_exact}"
        );
        assert!(r_adc > 0.4, "ADC rerank should still be useful: {r_adc}");
        assert!(
            r_adc <= r_exact + 1e-9,
            "quantized scoring cannot beat exact"
        );
    }

    #[test]
    fn opq_imi_engine_records_phase_spans() {
        let ctx = smoke_ctx();
        let eng = OpqImiEngine::train(
            ctx.dataset.as_slice(),
            ctx.dim(),
            &OpqImiConfig {
                imi_k: 8,
                pq_ks: 16,
                pq_subspaces: 2,
                opq_rounds: 2,
                seed: 3,
                train_rows: 0,
                ..Default::default()
            },
        )
        .with_metrics(ctx.metrics.clone());
        let cps = eng.search_traced(&ctx.queries[0], 5, &[50]);
        assert_eq!(cps.len(), 1);
        assert_eq!(
            ctx.metrics
                .counter_value("gqr_imi_queries_total{strategy=\"OPQ+IMI\"}"),
            Some(1)
        );
    }

    #[test]
    fn engine_for_shares_context_registry() {
        let ctx = smoke_ctx();
        let model = ModelKind::Pcah.train(ctx.dataset.as_slice(), ctx.dim(), 8, 1);
        let table: HashTable = HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
        let engine = engine_for(model.as_ref(), &table, &ctx);
        let params = SearchParams::for_k(5)
            .candidates(100)
            .build()
            .expect("valid search params");
        let _ = engine.search(&ctx.queries[0], &params);
        assert!(
            ctx.metrics
                .counter_names()
                .iter()
                .any(|n| n.starts_with("gqr_query_queries_total")),
            "engine searches must land in the context registry"
        );
    }

    #[test]
    fn multi_table_curve_runs() {
        let ctx = smoke_ctx();
        let m1 = ModelKind::Lsh.train(ctx.dataset.as_slice(), ctx.dim(), 8, 1);
        let m2 = ModelKind::Lsh.train(ctx.dataset.as_slice(), ctx.dim(), 8, 2);
        let idx = MultiTableIndex::build(
            vec![m1.as_ref(), m2.as_ref()],
            ctx.dataset.as_slice(),
            ctx.dim(),
        );
        let curve = multi_table_curve(
            "GHR(2)",
            &idx,
            ProbeStrategy::GenerateHammingRanking,
            &ctx,
            5,
            &[100, 2000],
        );
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[1].recall > 0.99);
    }
}
