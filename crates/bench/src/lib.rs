//! Experiment harness for the `gqr` reproduction: everything the `fig*` and
//! `table*` binaries share.
//!
//! Each paper artifact (figure or table) has a function in [`experiments`]
//! that regenerates it into CSV/JSON files under `results/`; the binaries in
//! `src/bin/` are thin CLI wrappers, and `run_all` executes the whole
//! evaluation. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured outcomes.

#![warn(missing_docs)]
pub mod cli;
pub mod context;
pub mod experiments;
pub mod models;
pub mod runner;

pub use cli::Config;
pub use context::ExperimentContext;
pub use models::ModelKind;
