//! Minimal CLI parsing shared by the experiment binaries (no external
//! argument-parsing crate: flags are few and uniform).

use gqr_dataset::Scale;

/// Common experiment configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Dataset scale: `smoke`, `default`, or `paper`.
    pub scale: Scale,
    /// Queries per dataset.
    pub n_queries: usize,
    /// Nearest neighbors per query (paper default: 20).
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/JSON results.
    pub out_dir: String,
    /// Worker threads for ground truth (`0` = all cores).
    pub threads: usize,
    /// Trace sampling period (`0` = tracing off): every Nth query records a
    /// full span tree, exported via `Reporter::write_traces` as
    /// `trace_*.{jsonl,chrome.json}` + `trace_*_slow.log`.
    pub trace_every: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Default,
            n_queries: 200,
            k: 20,
            seed: 42,
            out_dir: "results".to_string(),
            threads: 0,
            trace_every: 0,
        }
    }
}

impl Config {
    /// Parse `--scale`, `--queries`, `--k`, `--seed`, `--out`, `--threads`
    /// from an iterator of arguments (usually `std::env::args().skip(1)`).
    /// Unknown flags abort with a usage message; this is an experiment
    /// harness, not a public CLI surface.
    pub fn parse(args: impl Iterator<Item = String>) -> Config {
        let mut cfg = Config::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| die(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale");
                    cfg.scale = Scale::parse(&v).unwrap_or_else(|| {
                        die(&format!("bad --scale '{v}' (smoke|default|paper)"))
                    });
                }
                "--queries" => cfg.n_queries = parse_num(&value("--queries"), "--queries"),
                "--k" => cfg.k = parse_num(&value("--k"), "--k"),
                "--seed" => cfg.seed = parse_num::<u64>(&value("--seed"), "--seed"),
                "--out" => cfg.out_dir = value("--out"),
                "--threads" => cfg.threads = parse_num(&value("--threads"), "--threads"),
                "--trace" => cfg.trace_every = parse_num(&value("--trace"), "--trace"),
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        // Smoke scale defaults to fewer queries unless overridden; keep
        // runs snappy in CI.
        if cfg.scale == Scale::Smoke && cfg.n_queries == Config::default().n_queries {
            cfg.n_queries = 50;
        }
        cfg
    }
}

const USAGE: &str = "flags: --scale smoke|default|paper  --queries N  --k K  --seed S  --out DIR  --threads T  --trace N (sample every Nth query, 0=off)";

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad number '{s}' for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Config {
        Config::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.k, 20);
        assert_eq!(c.scale, Scale::Default);
        assert_eq!(c.out_dir, "results");
    }

    #[test]
    fn flags_override() {
        let c = parse(&[
            "--scale",
            "smoke",
            "--k",
            "5",
            "--queries",
            "7",
            "--seed",
            "9",
            "--out",
            "x",
            "--threads",
            "2",
            "--trace",
            "16",
        ]);
        assert_eq!(c.scale, Scale::Smoke);
        assert_eq!(c.k, 5);
        assert_eq!(c.n_queries, 7);
        assert_eq!(c.seed, 9);
        assert_eq!(c.out_dir, "x");
        assert_eq!(c.threads, 2);
        assert_eq!(c.trace_every, 16);
    }

    #[test]
    fn smoke_reduces_queries_by_default() {
        let c = parse(&["--scale", "smoke"]);
        assert_eq!(c.n_queries, 50);
        let c = parse(&["--scale", "smoke", "--queries", "123"]);
        assert_eq!(c.n_queries, 123);
    }
}
