//! The L2H model zoo used across experiments.

use gqr_l2h::isoh::{IsoHash, IsoHashOptions};
use gqr_l2h::itq::{Itq, ItqOptions};
use gqr_l2h::kmh::{KmeansHashing, KmhOptions};
use gqr_l2h::lsh::Lsh;
use gqr_l2h::pcah::Pcah;
use gqr_l2h::sh::SpectralHashing;
use gqr_l2h::HashModel;

/// Which hash-function learning algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Iterative quantization (the paper's default trainer, §6.1).
    Itq,
    /// PCA hashing.
    Pcah,
    /// Spectral hashing.
    Sh,
    /// K-means hashing (appendix).
    Kmh,
    /// Sign random projections.
    Lsh,
    /// Isotropic hashing (extension).
    IsoHash,
}

impl ModelKind {
    /// Short name for labels and file names.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Itq => "ITQ",
            ModelKind::Pcah => "PCAH",
            ModelKind::Sh => "SH",
            ModelKind::Kmh => "KMH",
            ModelKind::Lsh => "LSH",
            ModelKind::IsoHash => "IsoHash",
        }
    }

    /// Train on row-major `data` with code length `m`.
    ///
    /// Panics on trainer errors: experiment configurations are fixed by the
    /// harness, so an error here is a harness bug, not user input.
    pub fn train(&self, data: &[f32], dim: usize, m: usize, seed: u64) -> Box<dyn HashModel> {
        match self {
            ModelKind::Itq => Box::new(
                Itq::train_with(
                    data,
                    dim,
                    m,
                    &ItqOptions {
                        seed,
                        ..Default::default()
                    },
                )
                .expect("ITQ training"),
            ),
            ModelKind::Pcah => Box::new(Pcah::train(data, dim, m).expect("PCAH training")),
            ModelKind::Sh => Box::new(SpectralHashing::train(data, dim, m).expect("SH training")),
            ModelKind::Kmh => Box::new(
                KmeansHashing::train_with(
                    data,
                    dim,
                    m,
                    &KmhOptions {
                        seed,
                        ..Default::default()
                    },
                )
                .expect("KMH training"),
            ),
            ModelKind::Lsh => Box::new(Lsh::train(data, dim, m, seed).expect("LSH training")),
            ModelKind::IsoHash => Box::new(
                IsoHash::train_with(
                    data,
                    dim,
                    m,
                    &IsoHashOptions {
                        seed,
                        ..Default::default()
                    },
                )
                .expect("IsoHash training"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_train_and_encode() {
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.push((i % 17) as f32 - 8.0);
            data.push((i % 23) as f32 - 11.0);
            data.push((i % 5) as f32);
            data.push((i % 29) as f32 - 14.0);
        }
        for kind in [
            ModelKind::Itq,
            ModelKind::Pcah,
            ModelKind::Sh,
            ModelKind::Kmh,
            ModelKind::Lsh,
            ModelKind::IsoHash,
        ] {
            let model = kind.train(&data, 4, 4, 1);
            assert_eq!(model.code_length(), 4, "{}", kind.name());
            let qe = model.encode_query(&data[..4]);
            assert_eq!(qe.flip_costs.len(), 4, "{}", kind.name());
            assert_eq!(qe.code, model.encode(&data[..4]), "{}", kind.name());
        }
    }
}
