//! Regenerates Figs 15-16: GQR vs GHR/HR with spectral hashing.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig7_gqr_vs_hr::run_sh(&cfg)
}
