//! Regenerates Fig 11: speedup over HR for k in {1,10,50,100}.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig11_vary_k::run(&cfg)
}
