//! Regenerates Figs 21-22 + Table 3: eight additional datasets.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig21_additional::run(&cfg)
}
