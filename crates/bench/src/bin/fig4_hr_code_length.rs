//! Regenerates Fig 4: Hamming ranking's code-length trade-off.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig4_hr_code_length::run(&cfg)
}
