//! Regenerates Figs 7-9: GQR vs GHR/HR with ITQ.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig7_gqr_vs_hr::run(&cfg)
}
