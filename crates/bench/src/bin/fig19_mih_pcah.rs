//! Regenerates Fig 19: MIH vs GHR/GQR with PCAH.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig_mih::run_pcah(&cfg)
}
