//! Regenerates Table 2: OPQ vs PCAH training cost.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::table2_training_cost::run(&cfg)
}
