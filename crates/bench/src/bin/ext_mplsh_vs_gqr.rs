//! Extension: ITQ+GQR vs Multi-Probe LSH (operationalizes the paper's §5/§7 contrast).
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::ext_mplsh::run(&cfg)
}
