//! Regenerates Fig 12: multi-table GHR vs single-table GQR.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig12_multi_table::run(&cfg)
}
