//! Regenerates Fig 2: buckets per Hamming distance (C(m, r)).
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig2_bucket_counts::run(&cfg)
}
