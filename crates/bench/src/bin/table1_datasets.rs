//! Regenerates Table 1: dataset statistics and linear-search baseline.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::table1_datasets::run(&cfg)
}
