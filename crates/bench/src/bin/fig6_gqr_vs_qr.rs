//! Regenerates Fig 6: GQR vs QR (slow start).
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig6_gqr_vs_qr::run(&cfg)
}
