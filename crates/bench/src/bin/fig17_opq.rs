//! Regenerates Fig 17: PCAH+GQR vs OPQ+IMI.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig17_opq::run(&cfg)
}
