//! Extension: IsoHash under GQR/GHR/HR.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::ext_isohash::run(&cfg)
}
