//! Regenerates Fig 10: time-to-90%-recall vs code length.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig10_code_length::run(&cfg)
}
