//! Runs the entire evaluation: every table and figure of the paper, in
//! order, into one results directory. `--scale smoke` finishes in a couple
//! of minutes; `--scale default` is the laptop-scale reproduction recorded
//! in EXPERIMENTS.md.

use gqr_bench::experiments as ex;
use std::io;
use std::time::Instant;

type Job = (&'static str, fn(&gqr_bench::Config) -> io::Result<()>);

fn main() -> io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    let jobs: Vec<Job> = vec![
        ("Table 1 (datasets)", ex::table1_datasets::run),
        ("Fig 2 (bucket counts)", ex::fig2_bucket_counts::run),
        ("Fig 4 (HR code length)", ex::fig4_hr_code_length::run),
        ("Fig 6 (GQR vs QR)", ex::fig6_gqr_vs_qr::run),
        ("Figs 7-9 (GQR vs HR, ITQ)", ex::fig7_gqr_vs_hr::run),
        ("Fig 10 (code length)", ex::fig10_code_length::run),
        ("Fig 11 (vary k)", ex::fig11_vary_k::run),
        ("Fig 12 (multi-table)", ex::fig12_multi_table::run),
        ("Figs 13-14 (PCAH)", ex::fig7_gqr_vs_hr::run_pcah),
        ("Figs 15-16 (SH)", ex::fig7_gqr_vs_hr::run_sh),
        ("Fig 17 (OPQ+IMI)", ex::fig17_opq::run),
        ("Table 2 (training cost)", ex::table2_training_cost::run),
        ("Fig 18 (MIH, ITQ)", ex::fig_mih::run_itq),
        ("Fig 19 (MIH, PCAH)", ex::fig_mih::run_pcah),
        ("Fig 20 (KMH)", ex::fig20_kmh::run),
        (
            "Figs 21-22 + Table 3 (additional datasets)",
            ex::fig21_additional::run,
        ),
        ("Extension: Multi-Probe LSH vs GQR", ex::ext_mplsh::run),
        ("Extension: IsoHash under GQR/GHR/HR", ex::ext_isohash::run),
    ];
    let total = Instant::now();
    for (name, job) in jobs {
        let start = Instant::now();
        println!("=== {name} ===");
        job(&cfg)?;
        println!(
            "=== {name} done in {:.1}s ===\n",
            start.elapsed().as_secs_f64()
        );
    }
    println!(
        "all experiments done in {:.1}s; results in {}/",
        total.elapsed().as_secs_f64(),
        cfg.out_dir
    );
    Ok(())
}
