//! Regenerates Fig 20: K-means hashing with GQR vs GHR.
fn main() -> std::io::Result<()> {
    let cfg = gqr_bench::Config::parse(std::env::args().skip(1));
    gqr_bench::experiments::fig20_kmh::run(&cfg)
}
