//! Figure 11: speedup of GQR/GHR over HR at 90% recall as the number of
//! target neighbors `k` varies in {1, 10, 50, 100}.
//!
//! Ground truth is recomputed per `k`. The paper's shape: GQR's speedup is
//! largest at small `k` (few good buckets suffice, so bucket *order*
//! dominates) and narrows as `k` grows.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::curve::time_to_recall;
use gqr_eval::report::Reporter;
use std::io;

/// Regenerate Fig 11 (the paper uses TINY5M and SIFT10M).
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut rows = Vec::new();
    for spec in [DatasetSpec::tiny5m(), DatasetSpec::sift10m()] {
        for &k in &[1usize, 10, 50, 100] {
            let ctx = ExperimentContext::prepare_with_k(&spec, cfg, k);
            let model =
                ModelKind::Itq.train(ctx.dataset.as_slice(), ctx.dim(), ctx.code_length, cfg.seed);
            let table: HashTable =
                HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
            let engine = engine_for(model.as_ref(), &table, &ctx);
            let budgets = budget_ladder(ctx.n(), k, 0.6);

            let t90 = |s: ProbeStrategy| {
                let curve = strategy_curve(s.name(), &engine, s, &ctx, k, &budgets);
                time_to_recall(&curve, 0.90)
            };
            let hr = t90(ProbeStrategy::HammingRanking);
            let ghr = t90(ProbeStrategy::GenerateHammingRanking);
            let gqr = t90(ProbeStrategy::GenerateQdRanking);
            let speedup = |x: Option<f64>| match (hr, x) {
                (Some(h), Some(v)) if v > 0.0 => format!("{:.2}", h / v),
                _ => "n/a".to_string(),
            };
            println!(
                "[fig11] {} k={k}: speedup over HR — GHR {}, GQR {}",
                ctx.dataset.name(),
                speedup(ghr),
                speedup(gqr)
            );
            rows.push(vec![
                ctx.dataset.name().to_string(),
                k.to_string(),
                speedup(ghr),
                speedup(gqr),
                hr.map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "unreached".into()),
            ]);
        }
    }
    reporter.write_csv(
        "fig11_vary_k.csv",
        &["dataset", "k", "ghr_speedup", "gqr_speedup", "hr_time_s"],
        &rows,
    )?;
    Ok(())
}
