//! Figures 18 and 19: multi-index hashing versus GHR and GQR.
//!
//! The appendix result: at bucket-index code lengths (`m ≈ log2(n/10)`)
//! very few buckets are empty, so MIH's de-duplication/filter overhead
//! makes it *slightly worse* than plain hash lookup, while GQR beats both —
//! an efficient Hamming-space search does not fix Hamming distance's
//! coarseness.

use crate::cli::Config;
use crate::experiments::strategies_over_datasets;
use crate::models::ModelKind;
use gqr_core::engine::ProbeStrategy;
use gqr_dataset::DatasetSpec;
use std::io;

const STRATEGIES: [ProbeStrategy; 3] = [
    ProbeStrategy::GenerateQdRanking,
    ProbeStrategy::GenerateHammingRanking,
    ProbeStrategy::MultiIndexHashing { blocks: 2 },
];

/// Regenerate Fig 18 (ITQ).
pub fn run_itq(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Itq,
        &STRATEGIES,
        "fig18_mih_itq",
    )
}

/// Regenerate Fig 19 (PCAH).
pub fn run_pcah(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Pcah,
        &STRATEGIES,
        "fig19_mih_pcah",
    )
}
