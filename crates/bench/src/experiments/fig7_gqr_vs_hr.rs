//! Figures 7, 8 and 9: GQR versus HR/GHR with ITQ.
//!
//! One measurement pass produces all three artifacts: the recall–time
//! curves (Fig 7), the recall–items curves (Fig 8 — same checkpoints, items
//! axis), and the time to reach 80/85/90/95% recall (Fig 9), since the
//! curve CSV carries `total_time_s` and `mean_items` per checkpoint and the
//! time-at-recall table is interpolated from it.

use crate::cli::Config;
use crate::experiments::strategies_over_datasets;
use crate::models::ModelKind;
use gqr_core::engine::ProbeStrategy;
use gqr_dataset::DatasetSpec;
use std::io;

/// Regenerate Figs 7/8/9 (ITQ, four main datasets).
pub fn run(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Itq,
        &[
            ProbeStrategy::GenerateQdRanking,
            ProbeStrategy::GenerateHammingRanking,
            ProbeStrategy::HammingRanking,
        ],
        "fig7_8_9_itq",
    )
}

/// Same comparison with PCAH — Figures 13 and 14.
pub fn run_pcah(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Pcah,
        &[
            ProbeStrategy::GenerateQdRanking,
            ProbeStrategy::GenerateHammingRanking,
            ProbeStrategy::HammingRanking,
        ],
        "fig13_14_pcah",
    )
}

/// Same comparison with spectral hashing — Figures 15 and 16.
pub fn run_sh(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Sh,
        &[
            ProbeStrategy::GenerateQdRanking,
            ProbeStrategy::GenerateHammingRanking,
            ProbeStrategy::HammingRanking,
        ],
        "fig15_16_sh",
    )
}
