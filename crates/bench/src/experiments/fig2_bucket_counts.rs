//! Figure 2: number of buckets versus Hamming distance.
//!
//! Purely combinatorial — the count of `m`-bit codes at distance `r` is
//! `C(m, r)`, which is why Hamming ranking cannot order the huge population
//! of equidistant buckets. The paper plots m = 20 (the SIFT10M code length).

use crate::cli::Config;
use gqr_core::code::codes_at_distance;
use gqr_eval::report::Reporter;
use std::io;

/// Regenerate Fig 2 for a few representative code lengths.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut rows = Vec::new();
    for m in [12usize, 16, 20, 24] {
        for r in 0..=m {
            rows.push(vec![
                m.to_string(),
                r.to_string(),
                codes_at_distance(m, r).to_string(),
            ]);
        }
    }
    reporter.write_csv(
        "fig2_bucket_counts.csv",
        &["code_length", "hamming_distance", "buckets"],
        &rows,
    )?;
    // The paper's headline numbers: ~184756 buckets at r = 10 for m = 20.
    println!(
        "[fig2] m=20: C(20,10) = {} buckets share Hamming distance 10 (paper Fig 2 peak)",
        codes_at_distance(20, 10)
    );
    Ok(())
}
