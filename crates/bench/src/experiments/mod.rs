//! One module per paper artifact. Every `run(cfg)` regenerates its figure
//! or table into `cfg.out_dir` and prints a short summary to stdout.

pub mod ext_isohash;
pub mod ext_mplsh;
pub mod fig10_code_length;
pub mod fig11_vary_k;
pub mod fig12_multi_table;
pub mod fig17_opq;
pub mod fig20_kmh;
pub mod fig21_additional;
pub mod fig2_bucket_counts;
pub mod fig4_hr_code_length;
pub mod fig6_gqr_vs_qr;
pub mod fig7_gqr_vs_hr;
pub mod fig_mih;
pub mod table1_datasets;
pub mod table2_training_cost;

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::curve::{time_to_recall, RecallCurve};
use gqr_eval::report::Reporter;
use std::io;

/// Recall operating points used by the paper's time-at-recall bar charts.
pub const RECALL_TARGETS: [f64; 4] = [0.80, 0.85, 0.90, 0.95];

/// Measure the given strategies with one trained model on one dataset.
/// Returns the curves in strategy order.
pub(crate) fn run_strategies(
    ctx: &ExperimentContext,
    kind: ModelKind,
    strategies: &[ProbeStrategy],
    k: usize,
    seed: u64,
    ladder_frac: f64,
) -> Vec<RecallCurve> {
    let model = kind.train(ctx.dataset.as_slice(), ctx.dim(), ctx.code_length, seed);
    let table: HashTable = HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
    let mut engine = engine_for(model.as_ref(), &table, ctx);
    if strategies
        .iter()
        .any(|s| matches!(s, ProbeStrategy::MultiIndexHashing { .. }))
    {
        let blocks = strategies
            .iter()
            .find_map(|s| match s {
                ProbeStrategy::MultiIndexHashing { blocks } => Some(*blocks),
                _ => None,
            })
            .expect("checked above");
        engine.enable_mih(blocks);
    }
    let budgets = budget_ladder(ctx.n(), k, ladder_frac);
    strategies
        .iter()
        .map(|&s| strategy_curve(s.name(), &engine, s, ctx, k, &budgets))
        .collect()
}

/// The standard figure shape: several datasets × several strategies with one
/// trainer. Writes `{prefix}_{dataset}.csv` (recall–time long format) plus a
/// combined time-at-recall CSV, mirroring the paper's paired
/// curve/bar-chart figures.
pub(crate) fn strategies_over_datasets(
    cfg: &Config,
    specs: &[DatasetSpec],
    kind: ModelKind,
    strategies: &[ProbeStrategy],
    prefix: &str,
) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut tar_rows: Vec<Vec<String>> = Vec::new();
    for spec in specs {
        let ctx = ExperimentContext::prepare(spec, cfg);
        println!(
            "[{prefix}] {}: n={} dim={} m={} ({} queries)",
            ctx.dataset.name(),
            ctx.n(),
            ctx.dim(),
            ctx.code_length,
            ctx.queries.len()
        );
        let curves = run_strategies(&ctx, kind, strategies, cfg.k, cfg.seed, 0.5);
        let file = format!("{prefix}_{}.csv", sanitize(ctx.dataset.name()));
        reporter.write_curves(&file, &curves)?;
        let (mj, mp) = reporter.write_metrics(
            &format!("{prefix}_{}", sanitize(ctx.dataset.name())),
            &ctx.metrics,
        )?;
        println!("  metrics: {} + {}", mj.display(), mp.display());
        if let Some((tj, tc, _)) = reporter.write_traces(
            &format!("{prefix}_{}", sanitize(ctx.dataset.name())),
            &ctx.metrics,
        )? {
            println!("  traces: {} + {}", tj.display(), tc.display());
        }
        println!(
            "{}",
            gqr_eval::plot::ascii_chart(&curves, gqr_eval::plot::Axis::Time, 64, 16)
        );
        for curve in &curves {
            for &target in &RECALL_TARGETS {
                let t = time_to_recall(curve, target);
                tar_rows.push(vec![
                    ctx.dataset.name().to_string(),
                    curve.label.clone(),
                    format!("{target:.2}"),
                    t.map(|v| format!("{v:.4}"))
                        .unwrap_or_else(|| "unreached".into()),
                ]);
            }
            let last = curve.points.last().expect("non-empty curve");
            println!(
                "  {:<4} final recall {:.3} in {:.3}s",
                curve.label, last.recall, last.total_time_s
            );
        }
    }
    reporter.write_csv(
        &format!("{prefix}_time_at_recall.csv"),
        &["dataset", "method", "recall", "total_time_s"],
        &tar_rows,
    )?;
    Ok(())
}

/// File-name-safe dataset label.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("CIFAR60K-sim"), "cifar60k_sim");
        assert_eq!(sanitize("GLOVE1.2M-sim"), "glove1_2m_sim");
    }
}
