//! Figure 4: Hamming ranking's code-length trade-off on CIFAR.
//!
//! (a) recall–precision: longer codes distinguish buckets better, so
//! precision at a given recall *rises* with code length.
//! (b) recall–time: longer codes slow retrieval (more buckets to sort and
//! probe), so efficiency *falls* with code length.
//!
//! The paper uses m ∈ {16, 32, 64} on CIFAR60K; the scaled stand-in uses a
//! ladder around its own `log2(n/10)` operating point for the same contrast.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::sanitize;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::Reporter;
use std::io;

/// Regenerate Fig 4 (both panels share one CSV; precision is derived from
/// recall·k / items evaluated).
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let ctx = ExperimentContext::prepare(&DatasetSpec::cifar60k(), cfg);
    let base_m = ctx.code_length;
    let code_lengths = [base_m, base_m + 4, base_m + 8];

    let mut rows = Vec::new();
    for &m in &code_lengths {
        let model = ModelKind::Itq.train(ctx.dataset.as_slice(), ctx.dim(), m, cfg.seed);
        let table: HashTable = HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
        let engine = engine_for(model.as_ref(), &table, &ctx);
        let budgets = budget_ladder(ctx.n(), cfg.k, 0.5);
        let label = format!("HR-{m}");
        let curve = strategy_curve(
            &label,
            &engine,
            ProbeStrategy::HammingRanking,
            &ctx,
            cfg.k,
            &budgets,
        );
        for p in &curve.points {
            let precision = if p.mean_items > 0.0 {
                (p.recall * cfg.k as f64) / p.mean_items
            } else {
                0.0
            };
            rows.push(vec![
                label.clone(),
                p.budget.to_string(),
                format!("{:.6}", p.recall),
                format!("{precision:.6}"),
                format!("{:.6}", p.total_time_s),
                format!("{:.1}", p.mean_items),
            ]);
        }
        let last = curve.points.last().expect("non-empty");
        println!(
            "[fig4] {label}: final recall {:.3} in {:.3}s",
            last.recall, last.total_time_s
        );
    }
    reporter.write_csv(
        &format!("fig4_hr_code_length_{}.csv", sanitize(ctx.dataset.name())),
        &[
            "label",
            "budget",
            "recall",
            "precision",
            "total_time_s",
            "mean_items",
        ],
        &rows,
    )?;
    Ok(())
}
