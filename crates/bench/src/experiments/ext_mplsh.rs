//! Extension experiment: ITQ+GQR versus Multi-Probe LSH.
//!
//! Not a paper figure — it operationalizes the paper's §1/§5/§7 discussion:
//! L2H with a good querying method should beat data-oblivious LSH even with
//! query-directed multi-probing, and Multi-Probe LSH needs multiple tables
//! plus de-duplication while GQR runs on one table. Reported per dataset:
//! recall at equal unique-candidate budgets, plus Multi-Probe's invalid-set
//! and duplicate overhead counters.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::models::ModelKind;
use crate::runner::engine_for;
use gqr_core::engine::{ProbeStrategy, SearchParams};
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::Reporter;
use gqr_mplsh::{MpLshIndex, MpLshParams};
use std::io;
use std::time::Instant;

/// Run the extension comparison on the two mid-size datasets.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut rows = Vec::new();
    for spec in [DatasetSpec::cifar60k(), DatasetSpec::gist1m()] {
        let ctx = ExperimentContext::prepare(&spec, cfg);
        let data = ctx.dataset.as_slice();

        let model = ModelKind::Itq.train(data, ctx.dim(), ctx.code_length, cfg.seed);
        let table: HashTable = HashTable::build(model.as_ref(), data, ctx.dim());
        let engine = engine_for(model.as_ref(), &table, &ctx);

        let width = 1.5 * MpLshIndex::suggest_width(data, ctx.dim());
        let mplsh = MpLshIndex::build(
            data,
            ctx.dim(),
            &MpLshParams {
                tables: 6,
                hashes_per_table: 8,
                bucket_width: width,
                seed: cfg.seed,
            },
        );

        for budget in [ctx.n() / 200, ctx.n() / 50, ctx.n() / 10] {
            // ITQ + GQR (single table).
            let params = SearchParams::for_k(cfg.k)
                .candidates(budget)
                .strategy(ProbeStrategy::GenerateQdRanking)
                .build()
                .expect("valid search params");
            let start = Instant::now();
            let mut gqr_found = 0usize;
            for (q, t) in ctx.queries.iter().zip(&ctx.ground_truth) {
                let res = engine.search(q, &params);
                gqr_found += res.ids.iter().filter(|&&id| t.contains(&id)).count();
            }
            let gqr_time = start.elapsed().as_secs_f64();
            let gqr_recall = gqr_found as f64 / (cfg.k * ctx.queries.len()) as f64;

            // Multi-Probe LSH (6 tables).
            let start = Instant::now();
            let mut mp_found = 0usize;
            let mut invalid = 0usize;
            let mut dups = 0usize;
            for (q, t) in ctx.queries.iter().zip(&ctx.ground_truth) {
                let (res, stats) = mplsh.search_metered(q, data, cfg.k, budget, 1024, &ctx.metrics);
                mp_found += res.iter().filter(|(id, _)| t.contains(id)).count();
                invalid += stats.invalid_sets;
                dups += stats.duplicates_skipped;
            }
            let mp_time = start.elapsed().as_secs_f64();
            let mp_recall = mp_found as f64 / (cfg.k * ctx.queries.len()) as f64;

            println!(
                "[ext_mplsh] {} budget {budget}: ITQ+GQR {gqr_recall:.3} in {gqr_time:.2}s — \
                 MPLSH(6 tables) {mp_recall:.3} in {mp_time:.2}s ({} invalid sets, {} dups)",
                ctx.dataset.name(),
                invalid,
                dups
            );
            rows.push(vec![
                ctx.dataset.name().to_string(),
                budget.to_string(),
                format!("{gqr_recall:.4}"),
                format!("{gqr_time:.4}"),
                format!("{mp_recall:.4}"),
                format!("{mp_time:.4}"),
                invalid.to_string(),
                dups.to_string(),
            ]);
        }
        reporter.write_metrics(
            &format!(
                "ext_mplsh_{}",
                crate::experiments::sanitize(ctx.dataset.name())
            ),
            &ctx.metrics,
        )?;
    }
    reporter.write_csv(
        "ext_mplsh_vs_gqr.csv",
        &[
            "dataset",
            "budget",
            "itq_gqr_recall",
            "itq_gqr_time_s",
            "mplsh_recall",
            "mplsh_time_s",
            "mplsh_invalid_sets",
            "mplsh_duplicates",
        ],
        &rows,
    )?;
    Ok(())
}
