//! Figure 12: multi-table GHR versus single-table GQR.
//!
//! The paper's memory argument: GHR needs ~30 hash tables to approach the
//! recall–time profile of GQR with *one* table, so QD ranking buys the
//! multi-table recall boost without the multi-table memory bill. Tables use
//! ITQ trained with different rotation seeds.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::sanitize;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, multi_table_curve, strategy_curve};
use gqr_core::engine::ProbeStrategy;
use gqr_core::multi_table::MultiTableIndex;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::Reporter;
use gqr_l2h::HashModel;
use std::io;

/// Regenerate Fig 12 (the paper uses TINY5M and SIFT10M with 1/10/20/30
/// tables).
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let table_counts = [1usize, 10, 20, 30];
    for spec in [DatasetSpec::tiny5m(), DatasetSpec::sift10m()] {
        let mut ctx = ExperimentContext::prepare(&spec, cfg);
        // Multi-table curves re-run each budget, so trim the query set to
        // keep the figure affordable.
        let q_cap = ctx.queries.len().min(100);
        ctx.queries.truncate(q_cap);
        ctx.ground_truth.truncate(q_cap);

        // Short ladder: multi-table search lacks incremental checkpointing.
        let full = budget_ladder(ctx.n(), cfg.k, 0.5);
        let step = (full.len() / 6).max(1);
        let budgets: Vec<usize> = full
            .iter()
            .copied()
            .step_by(step)
            .chain([*full.last().unwrap()])
            .collect();
        let mut budgets = budgets;
        budgets.dedup();

        let max_tables = *table_counts.iter().max().unwrap();
        let models: Vec<Box<dyn HashModel>> = (0..max_tables)
            .map(|t| {
                ModelKind::Itq.train(
                    ctx.dataset.as_slice(),
                    ctx.dim(),
                    ctx.code_length,
                    cfg.seed.wrapping_add(t as u64 * 7919),
                )
            })
            .collect();

        let mut curves = Vec::new();
        for &t in &table_counts {
            let refs: Vec<&dyn HashModel> = models[..t].iter().map(|m| m.as_ref()).collect();
            let index = MultiTableIndex::build(refs, ctx.dataset.as_slice(), ctx.dim())
                .with_metrics(ctx.metrics.clone());
            let label = format!("GHR ({t})");
            let curve = multi_table_curve(
                &label,
                &index,
                ProbeStrategy::GenerateHammingRanking,
                &ctx,
                cfg.k,
                &budgets,
            );
            println!(
                "[fig12] {} {label}: final recall {:.3} in {:.3}s, ~{:.1} MB of tables",
                ctx.dataset.name(),
                curve.points.last().unwrap().recall,
                curve.points.last().unwrap().total_time_s,
                index.approx_bytes() as f64 / 1e6
            );
            curves.push(curve);
        }

        // Single-table GQR reference.
        let table: HashTable =
            HashTable::build(models[0].as_ref(), ctx.dataset.as_slice(), ctx.dim());
        let engine = engine_for(models[0].as_ref(), &table, &ctx);
        let gqr = strategy_curve(
            "GQR (1)",
            &engine,
            ProbeStrategy::GenerateQdRanking,
            &ctx,
            cfg.k,
            &budgets,
        );
        println!(
            "[fig12] {} GQR (1): final recall {:.3} in {:.3}s",
            ctx.dataset.name(),
            gqr.points.last().unwrap().recall,
            gqr.points.last().unwrap().total_time_s
        );
        curves.push(gqr);

        reporter.write_curves(
            &format!("fig12_multi_table_{}.csv", sanitize(ctx.dataset.name())),
            &curves,
        )?;
        reporter.write_metrics(
            &format!("fig12_multi_table_{}", sanitize(ctx.dataset.name())),
            &ctx.metrics,
        )?;
    }
    Ok(())
}
