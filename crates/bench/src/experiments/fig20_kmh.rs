//! Figure 20: K-means hashing with GQR versus GHR (hash lookup).
//!
//! KMH has no projected vector; the per-bit flipping costs are codeword
//! distance deltas (paper appendix). GQR consumes them unchanged and must
//! beat hash lookup by a clear margin. The paper swaps SIFT10M for SIFT1M
//! (KMH training ran out of memory); we mirror that.

use crate::cli::Config;
use crate::experiments::strategies_over_datasets;
use crate::models::ModelKind;
use gqr_core::engine::ProbeStrategy;
use gqr_dataset::DatasetSpec;
use std::io;

/// Regenerate Fig 20.
pub fn run(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &[
            DatasetSpec::cifar60k(),
            DatasetSpec::gist1m(),
            DatasetSpec::tiny5m(),
            DatasetSpec::sift1m(),
        ],
        ModelKind::Kmh,
        &[
            ProbeStrategy::GenerateQdRanking,
            ProbeStrategy::GenerateHammingRanking,
        ],
        "fig20_kmh",
    )
}
