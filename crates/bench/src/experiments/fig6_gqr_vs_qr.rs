//! Figure 6: GQR versus QR — the slow-start cost of sorting all buckets.
//!
//! Both probe identical bucket sequences; QR pays an `O(B log B)` sort per
//! query before the first bucket, so GQR wins at every operating point and
//! the gap widens with dataset (bucket-count) size.

use crate::cli::Config;
use crate::experiments::strategies_over_datasets;
use crate::models::ModelKind;
use gqr_core::engine::ProbeStrategy;
use gqr_dataset::DatasetSpec;
use std::io;

/// Regenerate Fig 6 (ITQ, four main datasets).
pub fn run(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &DatasetSpec::table1(),
        ModelKind::Itq,
        &[ProbeStrategy::GenerateQdRanking, ProbeStrategy::QdRanking],
        "fig6_gqr_vs_qr",
    )
}
