//! Figure 10: effect of code length — time to reach 90% recall as `m`
//! varies around the `log2(n/10)` operating point.
//!
//! The paper's claim: every method has a U-shaped optimum (short codes
//! retrieve junk, long codes pay retrieval overhead), GQR stays below
//! HR/GHR even at *their* optimal code length.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::sanitize;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::curve::time_to_recall;
use gqr_eval::report::Reporter;
use std::io;

const STRATEGIES: [ProbeStrategy; 3] = [
    ProbeStrategy::HammingRanking,
    ProbeStrategy::GenerateHammingRanking,
    ProbeStrategy::GenerateQdRanking,
];

/// Regenerate Fig 10 (the paper uses TINY5M and SIFT10M).
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut rows = Vec::new();
    for spec in [DatasetSpec::tiny5m(), DatasetSpec::sift10m()] {
        let mut ctx = ExperimentContext::prepare(&spec, cfg);
        // Code-length sweeps re-run the full ladder per (m, strategy); trim
        // the query set to keep the figure affordable.
        let q_cap = ctx.queries.len().min(100);
        ctx.queries.truncate(q_cap);
        ctx.ground_truth.truncate(q_cap);
        let base = ctx.code_length;
        // Paper sweeps ±(4..8) bits around the default in steps of 4; ±4
        // here — beyond that the scaled datasets leave the occupancy regime
        // the paper operates in (their n/2^m stays ≥ ~0.04).
        let lengths: Vec<usize> = [-4i64, -2, 0, 2, 4]
            .iter()
            .filter_map(|d| {
                let m = base as i64 + d;
                (6..=28).contains(&m).then_some(m as usize)
            })
            .collect();
        for &m in &lengths {
            let model = ModelKind::Itq.train(ctx.dataset.as_slice(), ctx.dim(), m, cfg.seed);
            let table: HashTable =
                HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
            let engine = engine_for(model.as_ref(), &table, &ctx);
            let budgets = budget_ladder(ctx.n(), cfg.k, 0.6);
            for &strategy in &STRATEGIES {
                let curve =
                    strategy_curve(strategy.name(), &engine, strategy, &ctx, cfg.k, &budgets);
                let t90 = time_to_recall(&curve, 0.90);
                println!(
                    "[fig10] {} m={m} {}: t(90%) = {}",
                    ctx.dataset.name(),
                    strategy.name(),
                    t90.map(|v| format!("{v:.3}s"))
                        .unwrap_or_else(|| "unreached".into())
                );
                rows.push(vec![
                    ctx.dataset.name().to_string(),
                    m.to_string(),
                    strategy.name().to_string(),
                    t90.map(|v| format!("{v:.4}"))
                        .unwrap_or_else(|| "unreached".into()),
                ]);
            }
        }
        let _ = sanitize(ctx.dataset.name());
    }
    reporter.write_csv(
        "fig10_code_length.csv",
        &["dataset", "code_length", "method", "time_to_90pct_s"],
        &rows,
    )?;
    Ok(())
}
