//! Table 1: dataset statistics and linear-search time.
//!
//! The paper reports the four main datasets' size, dimensionality, and the
//! wall time of brute-force search for 1000 queries. The synthetic stand-ins
//! report the same columns at the configured scale, normalized to per-query
//! milliseconds so numbers are comparable across query counts.

use crate::cli::Config;
use crate::context::ExperimentContext;
use gqr_dataset::stats::summarize;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::{markdown_table, Reporter};
use std::io;

/// Regenerate Table 1.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let header = [
        "dataset",
        "dim",
        "items",
        "megabytes",
        "linear_search_s",
        "per_query_ms",
    ];
    let mut rows = Vec::new();
    for spec in DatasetSpec::table1() {
        let ctx = ExperimentContext::prepare(&spec, cfg);
        let s = summarize(&ctx.dataset);
        let per_query_ms = 1000.0 * ctx.linear_search_s / ctx.queries.len().max(1) as f64;
        println!(
            "[table1] {}: {} × {} ({:.1} MB), linear search {:.3}s for {} queries",
            s.name,
            s.n,
            s.dim,
            s.megabytes,
            ctx.linear_search_s,
            ctx.queries.len()
        );
        rows.push(vec![
            s.name,
            s.dim.to_string(),
            s.n.to_string(),
            format!("{:.1}", s.megabytes),
            format!("{:.3}", ctx.linear_search_s),
            format!("{per_query_ms:.3}"),
        ]);
    }
    reporter.write_csv("table1_datasets.csv", &header, &rows)?;
    println!("{}", markdown_table(&header, &rows));
    Ok(())
}
