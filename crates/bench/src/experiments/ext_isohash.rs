//! Extension experiment: IsoHash (isotropic bit variances) under the three
//! querying methods.
//!
//! Not a paper figure. IsoHash equalizes per-bit projected variances, which
//! makes Hamming distance *less* wrong than under PCAH (every bit carries
//! the same information) — so the GQR-over-GHR gap here isolates what QD's
//! query-specific magnitudes add beyond per-bit calibration.

use crate::cli::Config;
use crate::experiments::strategies_over_datasets;
use crate::models::ModelKind;
use gqr_core::engine::ProbeStrategy;
use gqr_dataset::DatasetSpec;
use std::io;

/// Run IsoHash × {GQR, GHR, HR} on the two mid-size datasets.
pub fn run(cfg: &Config) -> io::Result<()> {
    strategies_over_datasets(
        cfg,
        &[DatasetSpec::cifar60k(), DatasetSpec::gist1m()],
        ModelKind::IsoHash,
        &[
            ProbeStrategy::GenerateQdRanking,
            ProbeStrategy::GenerateHammingRanking,
            ProbeStrategy::HammingRanking,
        ],
        "ext_isohash",
    )
}
