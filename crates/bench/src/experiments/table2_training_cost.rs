//! Table 2: training cost of OPQ versus PCAH.
//!
//! Wall time, CPU time and memory for training each model on the Fig 17
//! datasets. The paper's point: OPQ costs one to two orders of magnitude
//! more to train, which is what PCAH+GQR lets you avoid. Peak RSS is a
//! process-wide high-water mark, so the binary also reports the models'
//! analytic sizes.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::fig17_opq::datasets;
use crate::models::ModelKind;
use crate::runner::{OpqImiConfig, OpqImiEngine};
use gqr_eval::report::{markdown_table, Reporter};
use gqr_eval::timer::measure;
use std::io;

/// Regenerate Table 2.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let header = [
        "dataset",
        "opq_wall_s",
        "pcah_wall_s",
        "opq_cpu_s",
        "pcah_cpu_s",
        "opq_model_mb",
        "peak_rss_mb",
    ];
    let mut rows = Vec::new();
    for spec in datasets() {
        let ctx = ExperimentContext::prepare(&spec, cfg);
        let data = ctx.dataset.as_slice();

        let (opq_engine, opq_usage) = measure(|| {
            OpqImiEngine::train(
                data,
                ctx.dim(),
                &OpqImiConfig {
                    seed: cfg.seed,
                    ..Default::default()
                },
            )
        });
        let (_pcah, pcah_usage) =
            measure(|| ModelKind::Pcah.train(data, ctx.dim(), ctx.code_length, cfg.seed));

        println!(
            "[table2] {}: OPQ {:.2}s wall / {:.2}s cpu — PCAH {:.2}s wall / {:.2}s cpu",
            ctx.dataset.name(),
            opq_usage.wall_s,
            opq_usage.cpu_s.unwrap_or(f64::NAN),
            pcah_usage.wall_s,
            pcah_usage.cpu_s.unwrap_or(f64::NAN),
        );
        rows.push(vec![
            ctx.dataset.name().to_string(),
            format!("{:.2}", opq_usage.wall_s),
            format!("{:.2}", pcah_usage.wall_s),
            opq_usage
                .cpu_s
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            pcah_usage
                .cpu_s
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:.2}", opq_engine.opq().model_bytes() as f64 / 1e6),
            opq_usage
                .peak_rss_mb
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    reporter.write_csv("table2_training_cost.csv", &header, &rows)?;
    println!("{}", markdown_table(&header, &rows));
    Ok(())
}
