//! Figures 21–22 and Table 3: the eight additional NNS-benchmark datasets.
//!
//! ITQ+GQR and PCAH+GQR versus OPQ+IMI on image/audio/text stand-ins. The
//! paper's conclusion: GQR boosts one or both binary-hashing pipelines to
//! OPQ's level on most datasets, with no clear winner on the rest.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::sanitize;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve, OpqImiConfig, OpqImiEngine};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::stats::summarize;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::Reporter;
use std::io;

/// Regenerate Figs 21–22 and the Table 3 statistics CSV.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    let mut table3 = Vec::new();
    for spec in DatasetSpec::table3() {
        let ctx = ExperimentContext::prepare(&spec, cfg);
        let s = summarize(&ctx.dataset);
        table3.push(vec![
            s.name.clone(),
            s.dim.to_string(),
            s.n.to_string(),
            ctx.code_length.to_string(),
        ]);

        let budgets = budget_ladder(ctx.n(), cfg.k, 0.5);
        let mut curves = Vec::new();
        for kind in [ModelKind::Itq, ModelKind::Pcah] {
            let model = kind.train(ctx.dataset.as_slice(), ctx.dim(), ctx.code_length, cfg.seed);
            let table: HashTable =
                HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
            let engine = engine_for(model.as_ref(), &table, &ctx);
            curves.push(strategy_curve(
                format!("{}+GQR", kind.name()),
                &engine,
                ProbeStrategy::GenerateQdRanking,
                &ctx,
                cfg.k,
                &budgets,
            ));
        }
        let vq = OpqImiEngine::train(
            ctx.dataset.as_slice(),
            ctx.dim(),
            &OpqImiConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        curves.push(vq.curve("OPQ+IMI", &ctx, cfg.k, &budgets));

        for c in &curves {
            let last = c.points.last().unwrap();
            println!(
                "[fig21] {} {:<9} final recall {:.3} in {:.3}s",
                ctx.dataset.name(),
                c.label,
                last.recall,
                last.total_time_s
            );
        }
        reporter.write_curves(
            &format!("fig21_22_{}.csv", sanitize(ctx.dataset.name())),
            &curves,
        )?;
    }
    reporter.write_csv(
        "table3_datasets.csv",
        &["dataset", "dim", "items", "code_length"],
        &table3,
    )?;
    Ok(())
}
