//! Figure 17: PCAH+GQR versus PCAH+GHR versus OPQ+IMI.
//!
//! The headline §6.5 result: GQR lifts plain PCA hashing to the level of
//! the (much more expensive to train) vector-quantization pipeline.
//! The paper swaps SIFT10M for SIFT1M here because OPQ training ran out of
//! memory; we mirror the dataset list.

use crate::cli::Config;
use crate::context::ExperimentContext;
use crate::experiments::sanitize;
use crate::models::ModelKind;
use crate::runner::{budget_ladder, engine_for, strategy_curve, OpqImiConfig, OpqImiEngine};
use gqr_core::engine::ProbeStrategy;
use gqr_core::table::HashTable;
use gqr_dataset::DatasetSpec;
use gqr_eval::report::Reporter;
use std::io;

/// Datasets of the paper's Fig 17.
pub fn datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::cifar60k(),
        DatasetSpec::gist1m(),
        DatasetSpec::tiny5m(),
        DatasetSpec::sift1m(),
    ]
}

/// Regenerate Fig 17.
pub fn run(cfg: &Config) -> io::Result<()> {
    let reporter = Reporter::new(&cfg.out_dir)?;
    for spec in datasets() {
        let ctx = ExperimentContext::prepare(&spec, cfg);
        let budgets = budget_ladder(ctx.n(), cfg.k, 0.5);
        let mut curves = Vec::new();

        let model =
            ModelKind::Pcah.train(ctx.dataset.as_slice(), ctx.dim(), ctx.code_length, cfg.seed);
        let table: HashTable = HashTable::build(model.as_ref(), ctx.dataset.as_slice(), ctx.dim());
        let engine = engine_for(model.as_ref(), &table, &ctx);
        curves.push(strategy_curve(
            "PCAH+GQR",
            &engine,
            ProbeStrategy::GenerateQdRanking,
            &ctx,
            cfg.k,
            &budgets,
        ));
        curves.push(strategy_curve(
            "PCAH+GHR",
            &engine,
            ProbeStrategy::GenerateHammingRanking,
            &ctx,
            cfg.k,
            &budgets,
        ));

        let vq = OpqImiEngine::train(
            ctx.dataset.as_slice(),
            ctx.dim(),
            &OpqImiConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        )
        .with_metrics(ctx.metrics.clone());
        curves.push(vq.curve("OPQ+IMI", &ctx, cfg.k, &budgets));

        for c in &curves {
            let last = c.points.last().unwrap();
            println!(
                "[fig17] {} {:<9} final recall {:.3} in {:.3}s",
                ctx.dataset.name(),
                c.label,
                last.recall,
                last.total_time_s
            );
        }
        reporter.write_curves(
            &format!("fig17_opq_{}.csv", sanitize(ctx.dataset.name())),
            &curves,
        )?;
        reporter.write_metrics(
            &format!("fig17_opq_{}", sanitize(ctx.dataset.name())),
            &ctx.metrics,
        )?;
    }
    Ok(())
}
