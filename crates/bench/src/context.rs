//! Per-dataset experiment fixture: data, queries, ground truth, code length.

use crate::cli::Config;
use gqr_core::metrics::{MetricsRegistry, TraceConfig};
use gqr_dataset::{brute_force_knn, Dataset, DatasetSpec, GroundTruth};

/// Everything an experiment needs for one dataset: generated data, held-out
/// queries, exact ground truth, and the paper's code-length choice.
pub struct ExperimentContext {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Query vectors.
    pub queries: Vec<Vec<f32>>,
    /// Exact k-NN ids per query (k = `cfg.k`).
    pub ground_truth: GroundTruth,
    /// Code length from the paper's `m ≈ log2(n/10)` rule.
    pub code_length: usize,
    /// Seconds spent on the brute-force ground truth — also the "linear
    /// search" baseline of Table 1 (scaled: `n_queries` queries, not 1000).
    pub linear_search_s: f64,
    /// Shared per-dataset metrics registry (enabled). Engines built through
    /// [`crate::runner::engine_for`] record phase spans here; experiments
    /// export it via `Reporter::write_metrics` as `metrics_*.{json,prom}`.
    pub metrics: MetricsRegistry,
}

impl ExperimentContext {
    /// Generate data + queries and compute exact ground truth.
    pub fn prepare(spec: &DatasetSpec, cfg: &Config) -> ExperimentContext {
        Self::prepare_with_k(spec, cfg, cfg.k)
    }

    /// Same, with an explicit ground-truth depth (Fig 11 varies k).
    pub fn prepare_with_k(spec: &DatasetSpec, cfg: &Config, k: usize) -> ExperimentContext {
        let spec = spec.clone().scale(cfg.scale);
        let dataset = spec.generate(cfg.seed);
        let queries = dataset.sample_queries(cfg.n_queries, cfg.seed ^ 0x9e3779b9);
        let start = std::time::Instant::now();
        let ground_truth = brute_force_knn(&dataset, &queries, k, cfg.threads);
        let linear_search_s = start.elapsed().as_secs_f64();
        let metrics = MetricsRegistry::enabled();
        if cfg.trace_every > 0 {
            metrics.enable_tracing(TraceConfig {
                sample_every: cfg.trace_every,
                ..TraceConfig::default()
            });
        }
        ExperimentContext {
            dataset,
            queries,
            ground_truth,
            code_length: spec.code_length(),
            linear_search_s,
            metrics,
        }
    }

    /// Item count.
    pub fn n(&self) -> usize {
        self.dataset.n()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dataset.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqr_dataset::Scale;

    #[test]
    fn prepare_smoke_context() {
        let cfg = Config {
            scale: Scale::Smoke,
            n_queries: 5,
            k: 3,
            ..Default::default()
        };
        let ctx = ExperimentContext::prepare(&DatasetSpec::cifar60k(), &cfg);
        assert_eq!(ctx.queries.len(), 5);
        assert_eq!(ctx.ground_truth.len(), 5);
        assert_eq!(ctx.ground_truth[0].len(), 3);
        assert!(ctx.code_length >= 8);
        assert!(ctx.linear_search_s > 0.0);
        assert_eq!(ctx.n(), 2_000);
        assert!(ctx.metrics.is_enabled());
    }
}
