//! Datasets for the `gqr` reproduction: synthetic stand-ins for the paper's
//! benchmark sets, `fvecs`/`ivecs` IO, and parallel ground-truth computation.
//!
//! The paper (Li et al., SIGMOD 2018) evaluates on CIFAR60K, GIST1M, TINY5M,
//! SIFT10M and eight additional NNS-benchmark datasets. Those binaries are not
//! redistributable here, so [`synthetic`] provides clustered Gaussian-mixture
//! generators whose (dimension, cardinality) mirror each paper dataset at a
//! configurable [`synthetic::Scale`]. Every compared querying method sees the
//! same point set, so the paper's *relative* claims are preserved.
//!
//! # Example
//!
//! ```
//! use gqr_dataset::synthetic::{DatasetSpec, Scale};
//!
//! let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(42);
//! assert!(ds.n() > 0);
//! let queries = ds.sample_queries(10, 7);
//! let gt = gqr_dataset::ground_truth::brute_force_knn(&ds, &queries, 5, 1);
//! assert_eq!(gt.len(), 10);
//! ```

#![warn(missing_docs)]
pub mod ground_truth;
pub mod io;
pub mod stats;
pub mod synthetic;

pub use ground_truth::{brute_force_knn, brute_force_knn_metric, GroundTruth};
pub use synthetic::{DatasetSpec, Scale};

/// An in-memory dataset of `n` dense `f32` vectors of equal dimension,
/// stored contiguously row-major.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Wrap a row-major buffer. Panics if `data.len()` is not a multiple of
    /// `dim`.
    pub fn new(name: impl Into<String>, dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "buffer length must be a multiple of dim"
        );
        Dataset {
            name: name.into(),
            dim,
            data,
        }
    }

    /// Human-readable dataset name (e.g. `"CIFAR60K-sim"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of items.
    #[inline]
    pub fn n(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow item `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate over all items.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Bytes of vector payload (excluding metadata).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Hold out `n_queries` rows as queries: returns the remaining dataset
    /// (row order preserved, held-out rows removed) and the extracted query
    /// vectors. This is the paper's evaluation protocol — queries are real
    /// items that are *not* in the index. Panics if `n_queries >= n`.
    pub fn split_queries(self, n_queries: usize, seed: u64) -> (Dataset, Vec<Vec<f32>>) {
        use rand::{Rng, SeedableRng};
        let n = self.n();
        assert!(n_queries < n, "cannot hold out every row");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5711_7001);
        let mut held = vec![false; n];
        let mut picked = 0;
        while picked < n_queries {
            let i = rng.gen_range(0..n);
            if !held[i] {
                held[i] = true;
                picked += 1;
            }
        }
        let mut queries = Vec::with_capacity(n_queries);
        let mut rest = Vec::with_capacity((n - n_queries) * self.dim);
        for (i, row) in self.data.chunks_exact(self.dim).enumerate() {
            if held[i] {
                queries.push(row.to_vec());
            } else {
                rest.extend_from_slice(row);
            }
        }
        (Dataset::new(self.name, self.dim, rest), queries)
    }

    /// Draw `k` query vectors near (but not in) the dataset: rows sampled
    /// with replacement, perturbed by small Gaussian noise scaled to the
    /// average per-dimension spread — mirroring the paper's held-out query
    /// sampling.
    pub fn sample_queries(&self, k: usize, seed: u64) -> Vec<Vec<f32>> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_cafe);
        let scale = stats::per_dim_std(self).iter().copied().sum::<f32>() / self.dim as f32;
        let noise = 0.05 * scale;
        (0..k)
            .map(|_| {
                let base = self.row(rng.gen_range(0..self.n()));
                base.iter()
                    .map(|&x| x + noise * gqr_linalg::qr::gaussian(&mut rng) as f32)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accessors() {
        let ds = Dataset::new("toy", 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert_eq!(ds.rows().count(), 3);
        assert_eq!(ds.payload_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_buffer_panics() {
        let _ = Dataset::new("bad", 3, vec![1.0, 2.0]);
    }

    #[test]
    fn split_queries_holds_out_rows() {
        let ds = Dataset::new("toy", 2, (0..40).map(|i| i as f32).collect());
        let (rest, queries) = ds.split_queries(5, 3);
        assert_eq!(rest.n(), 15);
        assert_eq!(queries.len(), 5);
        // Every held-out query was a row of the original, and is gone from
        // the remainder.
        for q in &queries {
            assert_eq!(q.len(), 2);
            assert!(q[1] - q[0] == 1.0, "rows were (2i, 2i+1) pairs");
            assert!(!rest.rows().any(|r| r == q.as_slice()));
        }
    }

    #[test]
    fn split_queries_deterministic() {
        let make = || Dataset::new("toy", 2, (0..40).map(|i| i as f32).collect());
        let (_, q1) = make().split_queries(4, 9);
        let (_, q2) = make().split_queries(4, 9);
        assert_eq!(q1, q2);
    }

    #[test]
    #[should_panic(expected = "cannot hold out every row")]
    fn split_queries_rejects_full_holdout() {
        let ds = Dataset::new("toy", 2, vec![0.0; 8]);
        let _ = ds.split_queries(4, 1);
    }

    #[test]
    fn sample_queries_shape_and_determinism() {
        let ds = Dataset::new("toy", 2, (0..20).map(|i| i as f32).collect());
        let q1 = ds.sample_queries(4, 9);
        let q2 = ds.sample_queries(4, 9);
        assert_eq!(q1.len(), 4);
        assert_eq!(q1[0].len(), 2);
        assert_eq!(q1, q2, "same seed must give same queries");
    }
}
