//! Synthetic stand-ins for the paper's benchmark datasets.
//!
//! Each generator draws from a Gaussian mixture with anisotropic, low-rank
//! cluster covariances — the geometry that makes learned hash functions (and
//! the paper's quantization-distance argument) behave as they do on real
//! image/audio/text descriptors: strong principal directions, clustered mass,
//! low intrinsic dimension relative to the ambient space.
//!
//! The presets mirror the paper's Table 1 and Table 3 (name, ambient
//! dimension, cardinality) with a per-[`Scale`] reduction so the whole
//! harness runs on a laptop. Every figure binary accepts `--scale` to move
//! between them; EXPERIMENTS.md records the scale used for each measurement.

use crate::Dataset;
use gqr_linalg::qr::gaussian;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Experiment scale: how large the synthetic stand-ins are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit tests and doc examples (≤ 3k items).
    Smoke,
    /// Laptop-scale defaults used by the shipped harness (tens to hundreds of
    /// thousands of items).
    Default,
    /// The paper's published cardinalities and dimensions. Generating TINY5M
    /// or SIFT10M at this scale needs tens of GB of RAM and hours of ground
    /// truth; supported but not the default.
    Paper,
}

impl Scale {
    /// Parse a CLI string (`smoke|default|paper`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Flavour of descriptor the generator imitates. Controls cluster count,
/// anisotropy, and tail behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// GIST/TINY-like global image descriptors: many small clusters, smooth,
    /// strongly correlated dimensions.
    ImageGlobal,
    /// SIFT-like local gradient histograms: non-negative, sparser, moderately
    /// clustered.
    ImageLocal,
    /// Word-embedding-like (GloVe): roughly isotropic shells with mild
    /// clustering.
    TextEmbedding,
    /// Audio descriptors: few broad clusters, heavy anisotropy.
    Audio,
    /// Structureless iid uniform values (null model; see
    /// [`DatasetSpec::uniform`]).
    Uniform,
}

/// Specification of one synthetic dataset (a paper stand-in or a custom mix).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Stand-in name, e.g. `"CIFAR60K-sim"`.
    pub name: String,
    /// The paper's cardinality for this dataset (used at [`Scale::Paper`]).
    pub paper_n: usize,
    /// The paper's dimensionality.
    pub paper_dim: usize,
    /// Default-scale cardinality.
    pub default_n: usize,
    /// Default-scale dimensionality.
    pub default_dim: usize,
    /// Descriptor flavour.
    pub flavor: Flavor,
    /// Number of mixture components at default scale.
    pub clusters: usize,
    scale: Scale,
}

macro_rules! preset {
    ($fn_name:ident, $name:expr, $paper_n:expr, $paper_dim:expr,
     $default_n:expr, $default_dim:expr, $flavor:expr, $clusters:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $fn_name() -> DatasetSpec {
            DatasetSpec {
                name: $name.to_string(),
                paper_n: $paper_n,
                paper_dim: $paper_dim,
                default_n: $default_n,
                default_dim: $default_dim,
                flavor: $flavor,
                clusters: $clusters,
                scale: Scale::Default,
            }
        }
    };
}

impl DatasetSpec {
    preset!(
        cifar60k,
        "CIFAR60K-sim",
        60_000,
        512,
        20_000,
        64,
        Flavor::ImageGlobal,
        40,
        "Stand-in for CIFAR-10 GIST descriptors (Table 1: 60,000 × 512)."
    );
    preset!(
        gist1m,
        "GIST1M-sim",
        1_000_000,
        960,
        100_000,
        96,
        Flavor::ImageGlobal,
        120,
        "Stand-in for GIST1M (Table 1: 1,000,000 × 960)."
    );
    preset!(
        tiny5m,
        "TINY5M-sim",
        5_000_000,
        384,
        200_000,
        64,
        Flavor::ImageGlobal,
        200,
        "Stand-in for TINY5M (Table 1: 5,000,000 × 384)."
    );
    preset!(
        sift10m,
        "SIFT10M-sim",
        10_000_000,
        128,
        400_000,
        32,
        Flavor::ImageLocal,
        256,
        "Stand-in for SIFT10M (Table 1: 10,000,000 × 128)."
    );
    preset!(
        sift1m,
        "SIFT1M-sim",
        1_000_000,
        128,
        100_000,
        32,
        Flavor::ImageLocal,
        128,
        "Stand-in for SIFT1M (used in §6.5 when OPQ ran out of memory on SIFT10M)."
    );
    preset!(
        deep1m,
        "DEEP1M-sim",
        1_000_000,
        256,
        100_000,
        48,
        Flavor::ImageGlobal,
        100,
        "Stand-in for DEEP1M (Table 3: 1,000,000 × 256, image)."
    );
    preset!(
        msong1m,
        "MSONG1M-sim",
        994_185,
        420,
        100_000,
        64,
        Flavor::Audio,
        60,
        "Stand-in for MSONG1M (Table 3: 994,185 × 420, audio)."
    );
    preset!(
        glove1_2m,
        "GLOVE1.2M-sim",
        1_193_514,
        200,
        100_000,
        48,
        Flavor::TextEmbedding,
        80,
        "Stand-in for GLOVE1.2M (Table 3: 1,193,514 × 200, text)."
    );
    preset!(
        glove2_2m,
        "GLOVE2.2M-sim",
        2_196_017,
        300,
        150_000,
        48,
        Flavor::TextEmbedding,
        100,
        "Stand-in for GLOVE2.2M (Table 3: 2,196,017 × 300, text)."
    );
    preset!(
        audio50k,
        "AUDIO50K-sim",
        53_387,
        192,
        20_000,
        48,
        Flavor::Audio,
        30,
        "Stand-in for AUDIO50K (Table 3: 53,387 × 192, audio)."
    );
    preset!(
        nuswide,
        "NUSWIDE0.26M-sim",
        268_643,
        500,
        50_000,
        64,
        Flavor::ImageGlobal,
        60,
        "Stand-in for NUSWIDE0.26M (Table 3: 268,643 × 500, image)."
    );
    preset!(
        ukbench1m,
        "UKBENCH1M-sim",
        1_097_907,
        128,
        100_000,
        32,
        Flavor::ImageLocal,
        120,
        "Stand-in for UKBENCH1M (Table 3: 1,097,907 × 128, image)."
    );
    preset!(
        imagenet2_3m,
        "IMAGENET2.3M-sim",
        2_340_373,
        150,
        150_000,
        32,
        Flavor::ImageGlobal,
        150,
        "Stand-in for IMAGENET2.3M (Table 3: 2,340,373 × 150, image)."
    );

    /// A structureless uniform dataset over `[-1, 1]^dim` — the null model.
    /// Learned hashing has nothing to exploit here, so it bounds how much of
    /// any measured gain comes from data structure rather than machinery.
    pub fn uniform(n: usize, dim: usize) -> DatasetSpec {
        DatasetSpec {
            name: format!("UNIFORM{n}x{dim}"),
            paper_n: n,
            paper_dim: dim,
            default_n: n,
            default_dim: dim,
            flavor: Flavor::Uniform,
            clusters: 1,
            scale: Scale::Default,
        }
    }

    /// The four main-paper datasets (Table 1) in paper order.
    pub fn table1() -> Vec<DatasetSpec> {
        vec![
            Self::cifar60k(),
            Self::gist1m(),
            Self::tiny5m(),
            Self::sift10m(),
        ]
    }

    /// The eight appendix datasets (Table 3) in paper order.
    pub fn table3() -> Vec<DatasetSpec> {
        vec![
            Self::deep1m(),
            Self::msong1m(),
            Self::glove1_2m(),
            Self::glove2_2m(),
            Self::audio50k(),
            Self::nuswide(),
            Self::ukbench1m(),
            Self::imagenet2_3m(),
        ]
    }

    /// Set the generation scale (builder style).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Cardinality at the configured scale.
    pub fn n(&self) -> usize {
        match self.scale {
            Scale::Smoke => self.default_n.min(2_000),
            Scale::Default => self.default_n,
            Scale::Paper => self.paper_n,
        }
    }

    /// Dimensionality at the configured scale.
    pub fn dim(&self) -> usize {
        match self.scale {
            Scale::Smoke => self.default_dim.min(16),
            Scale::Default => self.default_dim,
            Scale::Paper => self.paper_dim,
        }
    }

    /// Mixture components at the configured scale.
    pub fn n_clusters(&self) -> usize {
        match self.scale {
            Scale::Smoke => self.clusters.min(8),
            Scale::Default => self.clusters,
            Scale::Paper => self.clusters * 4,
        }
    }

    /// Paper code length heuristic `m ≈ log2(n / 10)` (§6.1, EP = 10),
    /// clamped to `[8, 24]` so indexes stay practical at smoke scale.
    pub fn code_length(&self) -> usize {
        let n = self.n().max(2) as f64;
        ((n / 10.0).log2().round() as usize).clamp(8, 24)
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let n = self.n();
        let dim = self.dim();
        let k = self.n_clusters().max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));

        // Flavour-dependent geometry knobs. Within-cluster spread is kept
        // comparable to the between-center spread: real descriptors fill
        // almost the entire code space at m = log2(n/10) (the paper reports
        // 3872 of 4096 buckets occupied on CIFAR60K), which only happens
        // when quantization boundaries cut *through* clusters rather than
        // between them.
        if self.flavor == Flavor::Uniform {
            let data: Vec<f32> = (0..n * dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            return Dataset::new(self.name.clone(), dim, data);
        }
        let (center_spread, within_scale, decay_pow, intrinsic_frac, nonneg, noise) =
            match self.flavor {
                Flavor::ImageGlobal => (0.45f64, 1.1f64, 0.45f64, 0.55f64, false, 0.15f64),
                Flavor::ImageLocal => (0.4, 1.0, 0.4, 0.55, true, 0.15),
                Flavor::TextEmbedding => (0.3, 1.0, 0.2, 0.7, false, 0.15),
                Flavor::Audio => (0.8, 1.1, 0.8, 0.35, false, 0.10),
                Flavor::Uniform => unreachable!("handled above"),
            };
        let r = ((dim as f64 * intrinsic_frac).ceil() as usize).clamp(2, dim);

        // Cluster parameters: center, low-rank basis (shared, random axes per
        // cluster chosen by offset into one orthonormal frame to stay cheap),
        // and per-direction scales.
        let frame = gqr_linalg::random_orthonormal(dim, dim.min(r + k.min(dim)), &mut rng);
        let mut centers = Vec::with_capacity(k);
        let mut weights = Vec::with_capacity(k);
        let mut scales: Vec<Vec<f64>> = Vec::with_capacity(k);
        for _ in 0..k {
            let c: Vec<f64> = (0..dim)
                .map(|_| center_spread * gaussian(&mut rng))
                .collect();
            centers.push(c);
            // Zipf-ish cluster weights: a few dominant clusters, long tail.
            weights.push(rng.gen::<f64>().powf(2.0) + 0.05);
            let s: Vec<f64> = (0..r)
                .map(|j| {
                    let decay = (1.0 + j as f64).powf(-decay_pow);
                    within_scale * (0.5 + rng.gen::<f64>()) * decay
                })
                .collect();
            scales.push(s);
        }
        let wsum: f64 = weights.iter().sum();
        let cum: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / wsum;
                Some(*acc)
            })
            .collect();

        let mut data = Vec::with_capacity(n * dim);
        let mut latent = vec![0.0f64; r];
        for _ in 0..n {
            let u = rng.gen::<f64>();
            let ci = cum.partition_point(|&c| c < u).min(k - 1);
            for l in latent.iter_mut().zip(&scales[ci]) {
                *l.0 = l.1 * gaussian(&mut rng);
            }
            // x = center + frame[:, 0..r] · latent + isotropic noise
            for (d, &c) in centers[ci].iter().enumerate() {
                let mut x = c;
                for (j, &lj) in latent.iter().enumerate() {
                    x += frame[(d, j)] * lj;
                }
                x += noise * gaussian(&mut rng);
                if nonneg {
                    x = x.abs();
                }
                data.push(x as f32);
            }
        }
        Dataset::new(self.name.clone(), dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_small_and_deterministic() {
        let spec = DatasetSpec::cifar60k().scale(Scale::Smoke);
        let a = spec.generate(1);
        let b = spec.generate(1);
        assert_eq!(a.n(), 2_000);
        assert_eq!(a.dim(), 16);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = spec.generate(2);
        assert_ne!(a.as_slice(), c.as_slice(), "different seeds differ");
    }

    #[test]
    fn code_length_heuristic_matches_paper_examples() {
        // Paper §6.1 uses "an integer around log2(N/10)": 12, 16, 18, 20 for
        // the Table-1 datasets. Our rounding gives 13, 17, 19, 20 — within
        // one bit of the published choices.
        assert_eq!(
            DatasetSpec::cifar60k().scale(Scale::Paper).code_length(),
            13
        );
        assert_eq!(DatasetSpec::gist1m().scale(Scale::Paper).code_length(), 17);
        assert_eq!(DatasetSpec::tiny5m().scale(Scale::Paper).code_length(), 19);
        assert_eq!(DatasetSpec::sift10m().scale(Scale::Paper).code_length(), 20);
    }

    #[test]
    fn code_length_is_clamped() {
        let spec = DatasetSpec::cifar60k().scale(Scale::Smoke);
        assert!(spec.code_length() >= 8 && spec.code_length() <= 24);
    }

    #[test]
    fn sift_flavor_is_nonnegative() {
        let ds = DatasetSpec::sift1m().scale(Scale::Smoke).generate(3);
        assert!(ds.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn presets_cover_tables() {
        assert_eq!(DatasetSpec::table1().len(), 4);
        assert_eq!(DatasetSpec::table3().len(), 8);
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Variance along the first principal direction should dominate the
        // per-dimension average: low intrinsic dimension by construction.
        let ds = DatasetSpec::gist1m().scale(Scale::Smoke).generate(5);
        let pca = gqr_linalg::Pca::fit(ds.as_slice(), ds.dim(), ds.dim().min(8));
        let total: f64 = crate::stats::per_dim_std(&ds)
            .iter()
            .map(|&s| (s as f64) * (s as f64))
            .sum();
        assert!(
            pca.explained_variance[0] > 2.0 * total / ds.dim() as f64,
            "first PC should carry well above average variance"
        );
    }

    #[test]
    fn uniform_null_model_is_structureless() {
        let ds = DatasetSpec::uniform(3_000, 12).generate(9);
        assert_eq!(ds.n(), 3_000);
        assert_eq!(ds.dim(), 12);
        assert!(ds.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
        // No dominant principal direction: top eigenvalue close to the mean.
        let pca = gqr_linalg::Pca::fit(ds.as_slice(), 12, 12);
        let mean = pca.explained_variance.iter().sum::<f64>() / 12.0;
        assert!(
            pca.explained_variance[0] < 1.3 * mean,
            "uniform data must be isotropic: {:?}",
            pca.explained_variance
        );
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("Default"), Some(Scale::Default));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }
}
