//! `fvecs` / `ivecs` IO — the TEXMEX formats used by GIST1M/SIFT1M et al.
//!
//! Each record is a little-endian `i32` count `d` followed by `d` payload
//! entries (`f32` for fvecs, `i32` for ivecs). Provided so users with the
//! real benchmark files can swap them in for the synthetic stand-ins.

use crate::Dataset;
use bytes::{Buf, BufMut, BytesMut};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Read an `.fvecs` file into a [`Dataset`].
///
/// Fails with `InvalidData` on ragged dimensions, non-positive dimension
/// headers, or truncated records.
pub fn read_fvecs(path: impl AsRef<Path>, name: impl Into<String>) -> io::Result<Dataset> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    parse_fvecs(&raw, name)
}

/// Parse fvecs-format bytes.
pub fn parse_fvecs(mut raw: &[u8], name: impl Into<String>) -> io::Result<Dataset> {
    let mut dim: Option<usize> = None;
    let mut data = Vec::new();
    while raw.has_remaining() {
        if raw.remaining() < 4 {
            return Err(invalid("truncated dimension header"));
        }
        let d = raw.get_i32_le();
        if d <= 0 {
            return Err(invalid("non-positive vector dimension"));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => return Err(invalid("ragged vector dimensions")),
            _ => {}
        }
        if raw.remaining() < 4 * d {
            return Err(invalid("truncated vector payload"));
        }
        for _ in 0..d {
            data.push(raw.get_f32_le());
        }
    }
    let dim = dim.ok_or_else(|| invalid("empty fvecs file"))?;
    Ok(Dataset::new(name, dim, data))
}

/// Write a [`Dataset`] in fvecs format.
pub fn write_fvecs(path: impl AsRef<Path>, ds: &Dataset) -> io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    let mut buf = BytesMut::with_capacity(4 + 4 * ds.dim());
    for row in ds.rows() {
        buf.clear();
        buf.put_i32_le(ds.dim() as i32);
        for &x in row {
            buf.put_f32_le(x);
        }
        writer.write_all(&buf)?;
    }
    writer.flush()
}

/// Read an `.ivecs` file (e.g. TEXMEX ground-truth id lists).
pub fn read_ivecs(path: impl AsRef<Path>) -> io::Result<Vec<Vec<i32>>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    parse_ivecs(&raw)
}

/// Parse ivecs-format bytes.
pub fn parse_ivecs(mut raw: &[u8]) -> io::Result<Vec<Vec<i32>>> {
    let mut out = Vec::new();
    while raw.has_remaining() {
        if raw.remaining() < 4 {
            return Err(invalid("truncated dimension header"));
        }
        let d = raw.get_i32_le();
        if d < 0 {
            return Err(invalid("negative record length"));
        }
        let d = d as usize;
        if raw.remaining() < 4 * d {
            return Err(invalid("truncated record payload"));
        }
        let mut rec = Vec::with_capacity(d);
        for _ in 0..d {
            rec.push(raw.get_i32_le());
        }
        out.push(rec);
    }
    Ok(out)
}

/// Write id lists in ivecs format.
pub fn write_ivecs(path: impl AsRef<Path>, records: &[Vec<i32>]) -> io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    let mut buf = BytesMut::new();
    for rec in records {
        buf.clear();
        buf.put_i32_le(rec.len() as i32);
        for &x in rec {
            buf.put_i32_le(x);
        }
        writer.write_all(&buf)?;
    }
    writer.flush()
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let ds = Dataset::new("toy", 3, vec![1.0, -2.5, 0.0, 4.0, 5.0, 6.5]);
        let dir = std::env::temp_dir().join("gqr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fvecs");
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path, "toy").unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.as_slice(), ds.as_slice());
    }

    #[test]
    fn ivecs_roundtrip() {
        let recs = vec![vec![1, 2, 3], vec![], vec![7]];
        let dir = std::env::temp_dir().join("gqr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ivecs");
        write_ivecs(&path, &recs).unwrap();
        assert_eq!(read_ivecs(&path).unwrap(), recs);
    }

    #[test]
    fn parse_rejects_ragged() {
        let mut bytes = BytesMut::new();
        bytes.put_i32_le(2);
        bytes.put_f32_le(1.0);
        bytes.put_f32_le(2.0);
        bytes.put_i32_le(3); // different dimension
        bytes.put_f32_le(1.0);
        bytes.put_f32_le(2.0);
        bytes.put_f32_le(3.0);
        let err = parse_fvecs(&bytes, "bad").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_rejects_truncation() {
        let mut bytes = BytesMut::new();
        bytes.put_i32_le(4);
        bytes.put_f32_le(1.0); // only one of four floats
        assert!(parse_fvecs(&bytes, "bad").is_err());
    }

    #[test]
    fn parse_rejects_empty_and_nonpositive_dim() {
        assert!(parse_fvecs(&[], "bad").is_err());
        let mut bytes = BytesMut::new();
        bytes.put_i32_le(0);
        assert!(parse_fvecs(&bytes, "bad").is_err());
    }
}
