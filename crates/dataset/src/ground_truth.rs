//! Parallel brute-force exact k-nearest-neighbour ground truth.

use crate::Dataset;
use gqr_linalg::vecops::Metric;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Exact k-NN results, one `Vec<u32>` of item ids per query, sorted by
/// ascending distance.
pub type GroundTruth = Vec<Vec<u32>>;

/// A (distance, id) candidate ordered so that `BinaryHeap` is a max-heap on
/// distance — the heap root is the *worst* of the current top-k.
#[derive(Copy, Clone, PartialEq)]
struct Candidate {
    dist: f32,
    id: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Metric distances are finite; total order via
        // partial_cmp with id tiebreak keeps results deterministic.
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-NN of every query against `data`, brute force, parallelized over
/// queries with `threads` OS threads (use `0` for "all available cores").
///
/// This is the ground truth against which recall is measured, and also the
/// "linear search" baseline timed in Table 1.
pub fn brute_force_knn(
    data: &Dataset,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
) -> GroundTruth {
    brute_force_knn_metric(data, queries, k, threads, Metric::SquaredEuclidean)
}

/// [`brute_force_knn`] under an explicit metric.
pub fn brute_force_knn_metric(
    data: &Dataset,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
    metric: Metric,
) -> GroundTruth {
    assert!(k > 0, "k must be positive");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let mut results: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
    if queries.is_empty() {
        return results;
    }

    let chunk = queries.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (qs, out) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (q, slot) in qs.iter().zip(out.iter_mut()) {
                    *slot = knn_single_metric(data, q, k, metric);
                }
            });
        }
    })
    .expect("ground-truth worker panicked");
    results
}

/// Exact k-NN for one query (ascending distance, id tiebreak).
pub fn knn_single(data: &Dataset, query: &[f32], k: usize) -> Vec<u32> {
    knn_single_metric(data, query, k, Metric::SquaredEuclidean)
}

/// Exact k-NN for one query under an explicit metric.
///
/// The dataset is already one contiguous row-major tile, so the scan runs
/// through the blocked batch kernel [`Metric::eval_batch`] (bit-identical to
/// per-row evaluation under the same dispatched kernel).
pub fn knn_single_metric(data: &Dataset, query: &[f32], k: usize, metric: Metric) -> Vec<u32> {
    assert_eq!(query.len(), data.dim(), "query dimensionality mismatch");
    let k = k.min(data.n());
    let dim = data.dim();
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
    let mut dists = [0.0f32; gqr_linalg::TILE_ROWS];
    let mut id = 0u32;
    for tile in data.as_slice().chunks(gqr_linalg::TILE_ROWS * dim) {
        let out = &mut dists[..tile.len() / dim];
        metric.eval_batch(query, tile, out);
        for &dist in out.iter() {
            if heap.len() < k {
                heap.push(Candidate { dist, id });
            } else if let Some(top) = heap.peek() {
                if dist < top.dist || (dist == top.dist && id < top.id) {
                    heap.pop();
                    heap.push(Candidate { dist, id });
                }
            }
            id += 1;
        }
    }
    let mut sorted = heap.into_vec();
    sorted.sort();
    sorted.into_iter().map(|c| c.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset(n: usize) -> Dataset {
        // 1-D points at 0, 1, 2, …, embedded in 2-D.
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            data.push(i as f32);
            data.push(0.0);
        }
        Dataset::new("line", 2, data)
    }

    #[test]
    fn knn_on_a_line() {
        let ds = line_dataset(10);
        let nn = knn_single(&ds, &[3.2, 0.0], 3);
        assert_eq!(nn, vec![3, 4, 2]);
    }

    #[test]
    fn knn_k_larger_than_n() {
        let ds = line_dataset(3);
        let nn = knn_single(&ds, &[0.0, 0.0], 10);
        assert_eq!(nn, vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_by_id() {
        // Points 0 and 2 are equidistant from query at 1.
        let ds = line_dataset(3);
        let nn = knn_single(&ds, &[1.0, 0.0], 3);
        assert_eq!(nn[0], 1);
        assert_eq!(&nn[1..], &[0, 2], "equidistant neighbours ordered by id");
    }

    #[test]
    fn parallel_matches_serial() {
        let ds = line_dataset(100);
        let queries: Vec<Vec<f32>> = (0..17).map(|i| vec![i as f32 * 5.5, 0.1]).collect();
        let serial = brute_force_knn(&ds, &queries, 4, 1);
        let parallel = brute_force_knn(&ds, &queries, 4, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_queries_ok() {
        let ds = line_dataset(5);
        assert!(brute_force_knn(&ds, &[], 3, 2).is_empty());
    }
}
