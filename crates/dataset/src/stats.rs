//! Dataset summary statistics (used by Table 1 / Table 3 reporting and by
//! the query sampler's noise scaling).

use crate::Dataset;

/// Per-dimension mean.
pub fn per_dim_mean(ds: &Dataset) -> Vec<f32> {
    let mut mean = vec![0.0f64; ds.dim()];
    for row in ds.rows() {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x as f64;
        }
    }
    let n = ds.n().max(1) as f64;
    mean.into_iter().map(|m| (m / n) as f32).collect()
}

/// Per-dimension standard deviation (population).
pub fn per_dim_std(ds: &Dataset) -> Vec<f32> {
    let mean = per_dim_mean(ds);
    let mut var = vec![0.0f64; ds.dim()];
    for row in ds.rows() {
        for ((v, &x), &m) in var.iter_mut().zip(row).zip(&mean) {
            let d = x as f64 - m as f64;
            *v += d * d;
        }
    }
    let n = ds.n().max(1) as f64;
    var.into_iter().map(|v| ((v / n).sqrt()) as f32).collect()
}

/// One-line description used by the Table-1/Table-3 binaries.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of items.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Raw payload megabytes.
    pub megabytes: f64,
    /// Mean per-dimension standard deviation (spread proxy).
    pub mean_std: f32,
}

/// Summarize a dataset.
pub fn summarize(ds: &Dataset) -> DatasetSummary {
    let stds = per_dim_std(ds);
    DatasetSummary {
        name: ds.name().to_string(),
        n: ds.n(),
        dim: ds.dim(),
        megabytes: ds.payload_bytes() as f64 / (1024.0 * 1024.0),
        mean_std: stds.iter().sum::<f32>() / stds.len().max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_data() {
        let ds = Dataset::new("toy", 2, vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0]);
        let mean = per_dim_mean(&ds);
        assert_eq!(mean, vec![2.0, 10.0]);
        let std = per_dim_std(&ds);
        assert!((std[0] - (8.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(std[1], 0.0);
    }

    #[test]
    fn summary_fields() {
        let ds = Dataset::new("toy", 4, vec![1.0; 40]);
        let s = summarize(&ds);
        assert_eq!(s.n, 10);
        assert_eq!(s.dim, 4);
        assert!(s.megabytes > 0.0);
        assert_eq!(s.mean_std, 0.0);
    }
}
