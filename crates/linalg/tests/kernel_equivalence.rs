//! Kernel-equivalence suite: the runtime-dispatched SIMD kernels must agree
//! with the scalar reference (and an `f64` oracle) within a dimension-scaled
//! error bound, for every remainder-lane case and for special values — and
//! the batch kernels must be *bit-identical* to the row kernels.
//!
//! Run under both auto dispatch and `GQR_FORCE_SCALAR=1` (scripts/ci.sh does
//! both); the assertions themselves are dispatch-agnostic.

use gqr_linalg::kernels::{
    self, active_kernel, angular_dist_batch, angular_dist_f32, dot_batch, dot_f32,
    force_scalar_requested, scalar, sq_dist_batch, sq_dist_f32, KernelKind,
};
use proptest::prelude::*;

/// Deterministic splitmix64-derived values in `[-2, 2)`.
fn gen_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x1234);
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 22) as f32 - 2.0
        })
        .collect()
}

fn sq_dist_f64(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn angular_f64(a: &[f32], b: &[f32]) -> f64 {
    let na: f64 = a.iter().map(|&x| x as f64 * x as f64).sum();
    let nb: f64 = b.iter().map(|&y| y as f64 * y as f64).sum();
    let denom = (na * nb).sqrt();
    if denom <= 0.0 {
        return 1.0;
    }
    1.0 - dot_f64(a, b) / denom
}

/// `got` within a dimension-scaled multiple of f32 epsilon of `want`,
/// relative to `scale` (the sum of absolute accumulated terms — the
/// condition of the reduction).
fn close(got: f32, want: f64, len: usize, scale: f64) -> bool {
    let tol = (len as f64 + 16.0) * (f32::EPSILON as f64) * 8.0 * scale.max(1.0);
    (got as f64 - want).abs() <= tol
}

/// Every dimension 1..=1024: covers all 16-lane chunk counts, the 8-lane
/// overflow chunk, and every scalar-tail length, for all three kernels, for
/// both the dispatched and the explicit-scalar path against the f64 oracle.
#[test]
fn all_dims_agree_with_oracle() {
    for len in 1..=1024usize {
        let a = gen_vec(len, len as u64);
        let b = gen_vec(len, 7_000 + len as u64);

        let want = sq_dist_f64(&a, &b);
        assert!(
            close(sq_dist_f32(&a, &b), want, len, want),
            "sq_dist dispatched, len {len}: {} vs {want}",
            sq_dist_f32(&a, &b)
        );
        assert!(
            close(scalar::sq_dist(&a, &b), want, len, want),
            "sq_dist scalar, len {len}"
        );

        let want = dot_f64(&a, &b);
        let cond: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x as f64 * y as f64).abs())
            .sum();
        assert!(
            close(dot_f32(&a, &b), want, len, cond),
            "dot dispatched, len {len}"
        );
        assert!(
            close(scalar::dot(&a, &b), want, len, cond),
            "dot scalar, len {len}"
        );

        let want = angular_f64(&a, &b);
        assert!(
            close(angular_dist_f32(&a, &b), want, len, 1.0),
            "angular dispatched, len {len}: {} vs {want}",
            angular_dist_f32(&a, &b)
        );
    }
}

/// Special values: signed zeros, subnormals, and large magnitudes must not
/// diverge between the scalar and dispatched kernels (beyond reassociation
/// error) or produce non-finite garbage.
#[test]
fn special_values_stay_finite_and_consistent() {
    let specials: [f32; 8] = [
        0.0,
        -0.0,
        f32::MIN_POSITIVE,        // smallest normal
        f32::MIN_POSITIVE / 8.0,  // subnormal
        -f32::MIN_POSITIVE / 4.0, // negative subnormal
        1.0e15,
        -1.0e15,
        3.25,
    ];
    for len in [1usize, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
        // Cycle the special values through every lane position.
        let a: Vec<f32> = (0..len).map(|i| specials[i % specials.len()]).collect();
        let b: Vec<f32> = (0..len)
            .map(|i| specials[(i + 3) % specials.len()])
            .collect();

        let d = sq_dist_f32(&a, &b);
        let want = sq_dist_f64(&a, &b);
        assert!(d.is_finite(), "sq_dist len {len} not finite: {d}");
        assert!(
            close(d, want, len, want),
            "sq_dist specials len {len}: {d} vs {want}"
        );

        let p = dot_f32(&a, &b);
        let want = dot_f64(&a, &b);
        let cond: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x as f64 * y as f64).abs())
            .sum();
        assert!(p.is_finite(), "dot len {len} not finite: {p}");
        assert!(
            close(p, want, len, cond),
            "dot specials len {len}: {p} vs {want}"
        );

        // Angular over special values squares magnitudes up to 1e30 — the
        // reductions must stay finite and within [0, 2] numerics.
        let ang = angular_dist_f32(&a, &b);
        assert!(ang.is_finite(), "angular len {len} not finite: {ang}");
        assert!(
            (-1e-3..=2.0 + 1e-3).contains(&ang),
            "angular len {len} out of range: {ang}"
        );
    }

    // All-zero rows: distances collapse to 0 and the angular convention is 1.
    let z = vec![0.0f32; 24];
    assert_eq!(sq_dist_f32(&z, &z), 0.0);
    assert_eq!(dot_f32(&z, &z), 0.0);
    assert_eq!(angular_dist_f32(&z, &z), 1.0);

    // Signed zero must behave exactly like zero.
    let nz = vec![-0.0f32; 24];
    assert_eq!(sq_dist_f32(&z, &nz), 0.0);
    assert_eq!(angular_dist_f32(&nz, &nz), 1.0);
}

/// Batch kernels are bit-identical to row kernels across tile shapes: row
/// counts around the 4-row register block (1..=9) and the default tile
/// height, dims around the SIMD widths.
#[test]
fn batch_bit_identical_across_tile_shapes() {
    for &len in &[1usize, 3, 8, 13, 16, 17, 960] {
        for &n_rows in &[1usize, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33] {
            let q = gen_vec(len, 11);
            let mut rows = Vec::with_capacity(n_rows * len);
            for r in 0..n_rows {
                rows.extend_from_slice(&gen_vec(len, 500 + r as u64));
            }
            let mut out = vec![0.0f32; n_rows];

            sq_dist_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    sq_dist_f32(&q, row).to_bits(),
                    "sq_dist len {len} rows {n_rows} row {r}"
                );
            }
            dot_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    dot_f32(&q, row).to_bits(),
                    "dot len {len} rows {n_rows} row {r}"
                );
            }
            angular_dist_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    angular_dist_f32(&q, row).to_bits(),
                    "angular len {len} rows {n_rows} row {r}"
                );
            }
        }
    }
}

/// The `GQR_FORCE_SCALAR` override pins the scalar kernel; under it the
/// dispatched kernels must be bit-identical to the scalar reference.
#[test]
fn force_scalar_override_is_honored() {
    if force_scalar_requested() {
        assert_eq!(active_kernel(), KernelKind::Scalar);
        for len in [1usize, 9, 960] {
            let a = gen_vec(len, 2);
            let b = gen_vec(len, 3);
            assert_eq!(
                sq_dist_f32(&a, &b).to_bits(),
                scalar::sq_dist(&a, &b).to_bits()
            );
            assert_eq!(dot_f32(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
            assert_eq!(
                angular_dist_f32(&a, &b).to_bits(),
                scalar::angular_dist(&a, &b).to_bits()
            );
        }
    } else {
        // Auto dispatch: the selected kernel is stable and well-named, and
        // on AVX2 hardware the SIMD path must actually be selected.
        let k = active_kernel();
        assert_eq!(k, active_kernel());
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(
                k,
                KernelKind::Avx2Fma,
                "AVX2+FMA hardware must select the SIMD kernel"
            );
        }
    }
    assert!(matches!(kernels::kernel_name(), "avx2_fma" | "scalar"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Random vectors of random dimension: dispatched kernels track the f64
    /// oracle within the dimension-scaled bound.
    #[test]
    fn dispatched_tracks_oracle(
        len in 1usize..=256,
        seed in 0u64..1_000_000,
    ) {
        let a = gen_vec(len, seed);
        let b = gen_vec(len, seed ^ 0xdead_beef);
        let want = sq_dist_f64(&a, &b);
        prop_assert!(close(sq_dist_f32(&a, &b), want, len, want));
        let want = dot_f64(&a, &b);
        let cond: f64 = a.iter().zip(&b).map(|(&x, &y)| (x as f64 * y as f64).abs()).sum();
        prop_assert!(close(dot_f32(&a, &b), want, len, cond));
        prop_assert!(close(angular_dist_f32(&a, &b), angular_f64(&a, &b), len, 1.0));
    }

    /// Random tile shapes: batch output is bit-identical to row kernels.
    #[test]
    fn batch_matches_rows_bitwise(
        len in 1usize..=128,
        n_rows in 1usize..=12,
        seed in 0u64..1_000_000,
    ) {
        let q = gen_vec(len, seed);
        let mut rows = Vec::with_capacity(n_rows * len);
        for r in 0..n_rows {
            rows.extend_from_slice(&gen_vec(len, seed.wrapping_add(1 + r as u64)));
        }
        let mut out = vec![0.0f32; n_rows];
        sq_dist_batch(&q, &rows, &mut out);
        for (r, row) in rows.chunks_exact(len).enumerate() {
            prop_assert_eq!(out[r].to_bits(), sq_dist_f32(&q, row).to_bits());
        }
    }
}
