//! Property-based tests of the decomposition kernels: reconstruction,
//! orthogonality, and ordering invariants on random matrices.

use gqr_linalg::{qr, svd, symmetric_eigen, Matrix};
use proptest::prelude::*;

/// Random square matrix entries in [-5, 5].
fn square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Random rectangular matrix.
fn rect(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
}

fn symmetrize(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut s = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            s[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn eigen_reconstructs_symmetric_matrices(a in square(5)) {
        let s = symmetrize(&a);
        let e = symmetric_eigen(&s);
        // A = V Λ Vᵀ
        let n = 5;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        let scale = s.frobenius_norm().max(1.0);
        prop_assert!(rec.distance(&s) < 1e-8 * scale, "reconstruction error too large");
        prop_assert!(e.vectors.is_orthonormal(1e-8));
        // Eigenvalues sorted descending.
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn eigen_trace_equals_eigenvalue_sum(a in square(4)) {
        let s = symmetrize(&a);
        let e = symmetric_eigen(&s);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - s.trace()).abs() < 1e-8 * s.frobenius_norm().max(1.0));
    }

    #[test]
    fn svd_reconstructs_and_is_orthonormal(a in rect(6, 3)) {
        let s = svd(&a);
        let k = 3;
        let mut sig = Matrix::zeros(k, k);
        for i in 0..k {
            sig[(i, i)] = s.singular_values[i];
        }
        let rec = s.u.matmul(&sig).matmul(&s.v.transpose());
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(rec.distance(&a) < 1e-7 * scale);
        prop_assert!(s.u.is_orthonormal(1e-7));
        prop_assert!(s.v.is_orthonormal(1e-7));
        prop_assert!(s.singular_values.iter().all(|&v| v >= 0.0));
        prop_assert!(s.singular_values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_top_singular_value_matches_spectral_norm(a in rect(4, 4)) {
        let s = svd(&a);
        let pn = a.spectral_norm();
        let scale = s.singular_values[0].max(1.0);
        prop_assert!(
            (s.singular_values[0] - pn).abs() < 1e-5 * scale,
            "svd σ_max {} vs power-iteration {}",
            s.singular_values[0],
            pn
        );
    }

    #[test]
    fn qr_reconstructs_with_orthonormal_q(a in rect(5, 3)) {
        let (q, r) = qr(&a);
        prop_assert!(q.is_orthonormal(1e-8));
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(q.matmul(&r).distance(&a) < 1e-8 * scale);
        // R upper triangular.
        for i in 0..3 {
            for j in 0..i {
                prop_assert!(r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nearest_orthogonal_is_orthogonal_and_idempotent(a in square(3)) {
        // Skip near-singular inputs where the polar factor is ill-defined.
        let s = svd(&a);
        prop_assume!(s.singular_values[2] > 1e-3);
        let r1 = gqr_linalg::svd::nearest_orthogonal(&a);
        prop_assert!(r1.is_orthonormal(1e-7));
        let r2 = gqr_linalg::svd::nearest_orthogonal(&r1);
        prop_assert!(r1.distance(&r2) < 1e-6, "polar factor of an orthogonal matrix is itself");
    }

    #[test]
    fn spectral_norm_bounds_matvec(a in rect(4, 6), v in prop::collection::vec(-3.0f64..3.0, 6)) {
        let sn = a.spectral_norm();
        let av = a.matvec(&v);
        let nv: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nav: f64 = av.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(nav <= sn * nv * (1.0 + 1e-8) + 1e-9, "‖Av‖ = {nav} > σ·‖v‖ = {}", sn * nv);
    }
}
