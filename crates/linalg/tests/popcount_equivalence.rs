//! Popcount-kernel equivalence suite: the dispatched Hamming kernels must
//! satisfy the metric axioms against a naive bit-loop oracle that never
//! touches `count_ones`, and the batch kernel must be bit-identical to the
//! row kernel for every tile shape (including the AVX2 4-, 2-, and 1-block
//! fast paths and the any-width fallback).
//!
//! Run under both auto dispatch and `GQR_FORCE_SCALAR=1` (scripts/ci.sh
//! does both); the assertions themselves are dispatch-agnostic.

use gqr_linalg::kernels::{
    active_kernel, force_scalar_requested, hamming_batch, hamming_row, scalar, KernelKind,
};
use proptest::prelude::*;

/// Naive oracle: walk every bit of every block one at a time. Deliberately
/// the dumbest possible implementation — no `count_ones`, no word-level
/// tricks — so it cannot share a bug with the kernels under test.
fn oracle_hamming(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len());
    let mut dist = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        for bit in 0..64 {
            if (x >> bit) & 1 != (y >> bit) & 1 {
                dist += 1;
            }
        }
    }
    dist
}

fn oracle_weight(a: &[u64]) -> u32 {
    let zeros = vec![0u64; a.len()];
    oracle_hamming(a, &zeros)
}

/// Deterministic xorshift code generator (the proptest stub only supplies
/// range strategies, so block values come from a seeded stream).
fn gen_code(seed: u64, blocks: usize) -> Vec<u64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..blocks)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// The dispatched row kernel agrees with the bit-loop oracle for every
    /// block count the engine's code widths use (1 = u64, 2 = u128,
    /// 3 = U192, 4 = U256) and beyond.
    #[test]
    fn row_kernel_matches_bit_loop_oracle(
        blocks in 1usize..=6,
        seed in 0u64..1_000_000_000,
    ) {
        let a = gen_code(seed, blocks);
        let b = gen_code(seed ^ 0xDEAD_BEEF, blocks);
        prop_assert_eq!(hamming_row(&a, &b), oracle_hamming(&a, &b));
        prop_assert_eq!(hamming_row(&a, &a), 0);
    }

    /// Metric axioms, oracle-checked: identity, symmetry, the XOR-weight
    /// identity d(a, b) = weight(a ⊕ b), and the triangle inequality.
    #[test]
    fn metric_axioms_hold(
        blocks in 1usize..=5,
        seed in 0u64..1_000_000_000,
    ) {
        let a = gen_code(seed, blocks);
        let b = gen_code(seed.wrapping_add(1), blocks);
        let c = gen_code(seed.wrapping_add(2), blocks);
        // Symmetry.
        let dab = hamming_row(&a, &b);
        prop_assert_eq!(hamming_row(&b, &a), dab);
        // Hamming distance is the popcount of the XOR.
        let x: Vec<u64> = a.iter().zip(&b).map(|(&p, &q)| p ^ q).collect();
        prop_assert_eq!(dab, oracle_weight(&x));
        // Triangle inequality.
        let dbc = hamming_row(&b, &c);
        let dac = hamming_row(&a, &c);
        prop_assert!(dac <= dab + dbc, "triangle violated: {} > {} + {}", dac, dab, dbc);
    }

    /// The batch kernel is bit-identical to the row kernel over random tile
    /// shapes — block counts crossing the AVX2 specializations and row
    /// counts crossing its 4-row unroll — and both match the oracle.
    #[test]
    fn batch_matches_rows(
        blocks in 1usize..=5,
        n_rows in 1usize..=11,
        seed in 0u64..1_000_000_000,
    ) {
        let query = gen_code(seed, blocks);
        let codes = gen_code(seed ^ 0x00C0_FFEE, n_rows * blocks);
        let mut out = vec![0u32; n_rows];
        hamming_batch(&query, &codes, &mut out);
        for (r, row) in codes.chunks_exact(blocks).enumerate() {
            prop_assert_eq!(out[r], hamming_row(&query, row), "row {}", r);
            prop_assert_eq!(out[r], oracle_hamming(&query, row), "oracle row {}", r);
        }
    }
}

/// Deterministic sweep pinning the shapes the property tests sample: every
/// block count the code widths use × row counts around the AVX2 4-row
/// unroll, with all-zeros, all-ones, and alternating bit patterns.
#[test]
fn deterministic_shape_sweep() {
    let patterns: [u64; 5] = [0, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555, 1];
    for blocks in 1usize..=5 {
        for n_rows in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let query: Vec<u64> = (0..blocks).map(|i| patterns[i % patterns.len()]).collect();
            let codes: Vec<u64> = (0..n_rows * blocks)
                .map(|i| patterns[(i * 3 + 1) % patterns.len()].rotate_left(i as u32))
                .collect();
            let mut out = vec![0u32; n_rows];
            hamming_batch(&query, &codes, &mut out);
            for (r, row) in codes.chunks_exact(blocks).enumerate() {
                let want = oracle_hamming(&query, row);
                assert_eq!(out[r], want, "batch blocks {blocks} rows {n_rows} row {r}");
                assert_eq!(
                    hamming_row(&query, row),
                    want,
                    "row blocks {blocks} rows {n_rows} row {r}"
                );
            }
        }
    }
    // Extremes: distance is 0 on equal codes and 64·blocks on complements.
    for blocks in 1usize..=4 {
        let a = vec![0x0123_4567_89AB_CDEFu64; blocks];
        let not_a: Vec<u64> = a.iter().map(|&x| !x).collect();
        assert_eq!(hamming_row(&a, &a), 0);
        assert_eq!(hamming_row(&a, &not_a), 64 * blocks as u32);
    }
}

/// The `GQR_FORCE_SCALAR` override pins the scalar popcount path; under it
/// the dispatched kernels must match the scalar reference exactly. Under
/// auto dispatch on AVX2 hardware the SIMD path must actually be selected
/// — and still agree with scalar, since popcount is integer arithmetic.
#[test]
fn force_scalar_override_is_honored() {
    if force_scalar_requested() {
        assert_eq!(active_kernel(), KernelKind::Scalar);
    } else {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(
                active_kernel(),
                KernelKind::Avx2Fma,
                "AVX2+FMA hardware must select the SIMD popcount"
            );
        }
    }
    // Whichever path is active, it must equal the scalar reference bit for
    // bit — popcount has no float reassociation escape hatch.
    let query = gen_code(7, 4);
    let codes = gen_code(8, 40);
    let mut out = vec![0u32; 10];
    hamming_batch(&query, &codes, &mut out);
    for (r, row) in codes.chunks_exact(4).enumerate() {
        assert_eq!(out[r], scalar::hamming_row(&query, row));
    }
}
