//! Dense row-major matrix with the operations the trainers need.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Dense row-major `f64` matrix.
///
/// Sized for training-time math: covariance matrices (`d×d`), rotation
/// matrices (`m×m`), and projection matrices (`m×d`). Element access is
/// by `(row, col)` via indexing or [`Matrix::get`]/[`Matrix::set`].
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`. Panics on shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream over rhs rows for cache friendliness.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `selfᵀ * v` without materializing the transpose.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "matvec_t shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * vr;
            }
        }
        out
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal). Panics if not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace needs a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `‖self − rhs‖_F`.
    pub fn distance(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// True when `selfᵀ·self ≈ I` within `tol` (columns orthonormal).
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        let gram = self.transpose().matmul(self);
        gram.distance(&Matrix::identity(self.cols)) < tol
    }

    /// Copy rows `lo..hi` into a new matrix.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Keep the first `k` columns.
    pub fn take_cols(&self, k: usize) -> Matrix {
        assert!(k <= self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[..k]);
        }
        out
    }

    /// Largest singular value, estimated by power iteration on `AᵀA`.
    ///
    /// This is the constant `M = σ_max(H)` of the paper's Theorem 1; the QD
    /// lower bound (Theorem 2) uses `µ = 1/(M·√m)`.
    pub fn spectral_norm(&self) -> f64 {
        let n = self.cols;
        if n == 0 || self.rows == 0 {
            return 0.0;
        }
        // Deterministic start vector avoids seeding concerns; perturb if
        // orthogonal to the top singular vector by bad luck (retry with ramp).
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let norm = |x: &[f64]| x.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nv = norm(&v);
        for x in &mut v {
            *x /= nv;
        }
        let mut lambda = 0.0f64;
        for _ in 0..200 {
            let av = self.matvec(&v);
            let atav = self.matvec_t(&av);
            let n2 = norm(&atav);
            if n2 == 0.0 {
                return 0.0;
            }
            let next_lambda = n2;
            for (x, y) in v.iter_mut().zip(&atav) {
                *x = y / n2;
            }
            if (next_lambda - lambda).abs() <= 1e-12 * next_lambda.max(1.0) {
                lambda = next_lambda;
                break;
            }
            lambda = next_lambda;
        }
        lambda.sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_and_matvec_t_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let v2 = vec![2.0, -1.0];
        let lhs = a.matvec_t(&v2);
        let rhs = a.transpose().matvec(&v2);
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_and_trace() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 1.0]]);
        assert!((a.frobenius_norm() - (26.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.trace(), 4.0);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        assert!((a.spectral_norm() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_norm_of_rectangular() {
        // A = [[1,0,0],[0,2,0]] has σ_max = 2.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0]]);
        assert!((a.spectral_norm() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn slice_and_take() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(0, 0)], 4.0);
        let t = a.take_cols(2);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 8.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let c = &(&a + &b) - &b;
        assert!(c.distance(&a) < 1e-12);
    }
}
