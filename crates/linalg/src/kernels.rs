//! Runtime-dispatched SIMD distance kernels and blocked tile evaluation.
//!
//! The exact re-rank loop is where ANN query time goes once probing has
//! ordered the buckets (the paper's §6 timings are dominated by it on
//! GIST-960). This module supplies that hot path:
//!
//! * **Row kernels** — [`sq_dist_f32`], [`dot_f32`], [`angular_dist_f32`]:
//!   one query row against one item row, dispatched at runtime to an
//!   AVX2+FMA implementation when the CPU supports it (checked once via
//!   `is_x86_feature_detected!`), falling back to the unrolled scalar code
//!   otherwise. Setting `GQR_FORCE_SCALAR=1` in the environment pins the
//!   scalar path regardless of CPU features.
//! * **Batch kernels** — [`sq_dist_batch`], [`dot_batch`],
//!   [`angular_dist_batch`]: one query against a *contiguous row-major tile*
//!   of items. The AVX2 path scores four rows per iteration with one shared
//!   query load and independent accumulator chains per row (register
//!   blocking), which is what actually saturates the FMA ports — a single
//!   row's accumulation is latency-bound.
//! * **[`ScoreBlock`]** — a reusable gather-then-score scratch tile:
//!   consumers copy bucket candidates (possibly ragged, after filtering)
//!   into the block and flush it through the batch kernels, amortizing
//!   bounds checks and per-row call overhead.
//!
//! # Determinism contract
//!
//! Within one kernel (scalar *or* AVX2), the batch kernels are **bit
//! identical** to the corresponding row kernel applied row by row: the
//! four-row register-blocked loop gives every row the same accumulator
//! count, chunk order, horizontal-reduction sequence, and scalar tail as
//! the single-row kernel. Equivalence between the scalar and AVX2 kernels
//! is only approximate (float addition is reassociated across lanes); the
//! kernel-equivalence test suite bounds the difference by a
//! dimension-scaled epsilon.

use crate::vecops::Metric;
use std::sync::OnceLock;

/// Which kernel implementation the dispatcher selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// AVX2 + FMA intrinsics (x86-64, runtime-detected).
    Avx2Fma,
    /// Portable unrolled scalar code.
    Scalar,
}

impl KernelKind {
    /// Stable label used in metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Scalar => "scalar",
        }
    }
}

/// The kernel selected for this process: AVX2+FMA when the CPU supports
/// both and `GQR_FORCE_SCALAR` is unset (or set to `0`/empty), scalar
/// otherwise. Decided once on first use and cached.
pub fn active_kernel() -> KernelKind {
    static KIND: OnceLock<KernelKind> = OnceLock::new();
    *KIND.get_or_init(|| {
        if force_scalar_requested() {
            return KernelKind::Scalar;
        }
        detect_simd()
    })
}

/// Whether the environment asks for the scalar fallback
/// (`GQR_FORCE_SCALAR` set to anything but `0` or the empty string).
pub fn force_scalar_requested() -> bool {
    match std::env::var("GQR_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// CPU capability check, independent of the environment override.
#[cfg(target_arch = "x86_64")]
fn detect_simd() -> KernelKind {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        KernelKind::Avx2Fma
    } else {
        KernelKind::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_simd() -> KernelKind {
    KernelKind::Scalar
}

/// Stable label of the active kernel (`"avx2_fma"` or `"scalar"`), for the
/// `gqr_kernel_dispatch` info metric.
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

// ---------------------------------------------------------------------------
// Dispatched row kernels
// ---------------------------------------------------------------------------

/// Squared Euclidean distance between two `f32` rows (dispatched).
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::sq_dist(a, b) },
        _ => scalar::sq_dist(a, b),
    }
}

/// Dot product of two `f32` rows (dispatched).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::dot(a, b) },
        _ => scalar::dot(a, b),
    }
}

/// Angular distance `1 − cos(a, b)` in `[0, 2]` (dispatched). Zero-norm
/// inputs yield 1 (treated as orthogonal to everything).
#[inline]
pub fn angular_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (dot, na, nb) = match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::angular_parts(a, b) },
        _ => scalar::angular_parts(a, b),
    };
    angular_from_parts(dot, na, nb)
}

/// Final angular combine, shared by every path so row and batch kernels
/// agree bitwise.
#[inline]
fn angular_from_parts(dot: f32, na: f32, nb: f32) -> f32 {
    let denom = (na * nb).sqrt();
    if denom <= 0.0 {
        return 1.0;
    }
    1.0 - dot / denom
}

// ---------------------------------------------------------------------------
// Dispatched batch kernels (contiguous row-major tiles)
// ---------------------------------------------------------------------------

/// Squared Euclidean distance from `q` to every row of a contiguous
/// row-major tile. `rows.len()` must equal `q.len() * out.len()`; `out[i]`
/// receives the distance to row `i`. Bit-identical to calling
/// [`sq_dist_f32`] per row under the same dispatched kernel.
pub fn sq_dist_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(rows.len(), q.len() * out.len(), "tile must be n×dim");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::sq_dist_batch(q, rows, out) },
        _ => {
            for (row, d) in rows.chunks_exact(q.len()).zip(out.iter_mut()) {
                *d = scalar::sq_dist(q, row);
            }
        }
    }
}

/// Dot product of `q` with every row of a contiguous tile (see
/// [`sq_dist_batch`] for the layout contract).
pub fn dot_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(rows.len(), q.len() * out.len(), "tile must be n×dim");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::dot_batch(q, rows, out) },
        _ => {
            for (row, d) in rows.chunks_exact(q.len()).zip(out.iter_mut()) {
                *d = scalar::dot(q, row);
            }
        }
    }
}

/// Angular distance from `q` to every row of a contiguous tile. The query
/// norm is reduced once and reused — the reduction sequence matches the row
/// kernel's, so results stay bit-identical to per-row [`angular_dist_f32`].
pub fn angular_dist_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(rows.len(), q.len() * out.len(), "tile must be n×dim");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::angular_batch(q, rows, out) },
        _ => {
            let na = scalar::norm_sq(q);
            for (row, d) in rows.chunks_exact(q.len()).zip(out.iter_mut()) {
                let (dot, nb) = scalar::dot_and_norm_sq(q, row);
                *d = angular_from_parts(dot, na, nb);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched popcount Hamming kernels (block-packed binary codes)
// ---------------------------------------------------------------------------

/// Hamming distance between two codes packed as little-endian `u64` blocks
/// (dispatched row kernel). Both slices must have the same length.
#[inline]
pub fn hamming_row(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    scalar::hamming_row(a, b)
}

/// Hamming distance from one query code to every code in a contiguous
/// block-packed tile: `codes` holds `out.len()` codes of `query.len()`
/// blocks each. `out[i]` receives `popcount(query ⊕ codes[i])`.
///
/// Dispatched like the distance kernels: an AVX2 nibble-lookup (vpshufb)
/// popcount when the CPU supports it, the scalar per-block `count_ones`
/// loop otherwise; `GQR_FORCE_SCALAR=1` pins the scalar path. Both paths
/// are **bit-identical** (integer arithmetic), unlike the float kernels.
/// This is the bucket-rank hot path of Hamming ranking: one call scores
/// every occupied bucket of a table.
pub fn hamming_batch(query: &[u64], codes: &[u64], out: &mut [u32]) {
    assert_eq!(
        codes.len(),
        query.len() * out.len(),
        "tile must be n×blocks"
    );
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe { avx2::hamming_batch(query, codes, out) },
        _ => {
            for (row, d) in codes.chunks_exact(query.len().max(1)).zip(out.iter_mut()) {
                *d = scalar::hamming_row(query, row);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ScoreBlock: gather-then-score scratch tile
// ---------------------------------------------------------------------------

/// Default tile height (rows gathered before a flush). 32 rows of GIST-960
/// is ~120 KiB — streamed once, scored while cache-hot.
pub const TILE_ROWS: usize = 32;

/// A reusable gather-then-score tile.
///
/// Hot consumers (the engine's Evaluate phase, MPLSH candidate evaluation,
/// the OPQ+IMI re-rank) copy candidate rows into the block — possibly
/// skipping filtered ids, so tiles may be ragged — and [`flush`] scores the
/// whole tile through the dispatched batch kernel. The buffers are reused
/// across buckets and (via the batch path) across queries, so steady-state
/// evaluation performs no allocation.
///
/// [`flush`]: ScoreBlock::flush
#[derive(Clone, Debug)]
pub struct ScoreBlock {
    dim: usize,
    max_rows: usize,
    ids: Vec<u32>,
    rows: Vec<f32>,
    dists: Vec<f32>,
}

impl ScoreBlock {
    /// A block for `dim`-dimensional rows with the default tile height.
    pub fn new(dim: usize) -> ScoreBlock {
        ScoreBlock::with_rows(dim, TILE_ROWS)
    }

    /// A block holding up to `max_rows` rows per tile.
    pub fn with_rows(dim: usize, max_rows: usize) -> ScoreBlock {
        assert!(dim > 0, "rows must have at least one dimension");
        assert!(max_rows > 0, "tile must hold at least one row");
        ScoreBlock {
            dim,
            max_rows,
            ids: Vec::with_capacity(max_rows),
            rows: Vec::with_capacity(max_rows * dim),
            dists: vec![0.0; max_rows],
        }
    }

    /// Row dimensionality this block was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows currently gathered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tile is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the tile is full (a push would overflow — flush first).
    pub fn is_full(&self) -> bool {
        self.ids.len() == self.max_rows
    }

    /// Maximum rows per tile.
    pub fn capacity(&self) -> usize {
        self.max_rows
    }

    /// Re-target the block to a different dimensionality, clearing any
    /// gathered rows. No-op (beyond the clear) when `dim` already matches;
    /// lets one scratch block serve engines over different datasets.
    pub fn ensure_dim(&mut self, dim: usize) {
        assert!(dim > 0, "rows must have at least one dimension");
        self.clear();
        if self.dim != dim {
            self.dim = dim;
            self.rows.clear();
            self.rows.reserve(self.max_rows * dim);
        }
    }

    /// Drop gathered rows without scoring them.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.rows.clear();
    }

    /// Gather one candidate row. Panics if the tile is full (callers flush
    /// on [`ScoreBlock::is_full`]) or the row has the wrong dimensionality.
    #[inline]
    pub fn push(&mut self, id: u32, row: &[f32]) {
        assert!(!self.is_full(), "tile full: flush before pushing");
        assert_eq!(row.len(), self.dim, "row dimensionality mismatch");
        self.ids.push(id);
        self.rows.extend_from_slice(row);
    }

    /// Score every gathered row against `query` under `metric`, invoke
    /// `sink(id, distance)` in push order, clear the tile, and return the
    /// number of rows scored.
    pub fn flush(
        &mut self,
        query: &[f32],
        metric: Metric,
        mut sink: impl FnMut(u32, f32),
    ) -> usize {
        let n = self.ids.len();
        if n == 0 {
            return 0;
        }
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let out = &mut self.dists[..n];
        match metric {
            Metric::SquaredEuclidean => sq_dist_batch(query, &self.rows, out),
            Metric::Angular => angular_dist_batch(query, &self.rows, out),
        }
        for (&id, &d) in self.ids.iter().zip(out.iter()) {
            sink(id, d);
        }
        self.clear();
        n
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels (the fallback, and the reference for equivalence tests)
// ---------------------------------------------------------------------------

/// Portable scalar implementations. Public so the kernel-equivalence suite
/// can compare the dispatched kernels against this reference in the same
/// process, independent of `GQR_FORCE_SCALAR`.
pub mod scalar {
    /// Hamming distance between two block-packed codes: per-block XOR +
    /// `count_ones`. The reference the AVX2 popcount kernel must match
    /// bit-for-bit.
    #[inline]
    pub fn hamming_row(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0u32;
        for (&x, &y) in a.iter().zip(b) {
            acc += (x ^ y).count_ones();
        }
        acc
    }

    /// Squared Euclidean distance, unrolled over four independent
    /// accumulators (the pre-SIMD hot kernel, kept bit-for-bit).
    #[inline]
    pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            let d0 = ca[0] - cb[0];
            let d1 = ca[1] - cb[1];
            let d2 = ca[2] - cb[2];
            let d3 = ca[3] - cb[3];
            acc0 += d0 * d0;
            acc1 += d1 * d1;
            acc2 += d2 * d2;
            acc3 += d3 * d3;
        }
        let mut tail = 0.0f32;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            let d = x - y;
            tail += d * d;
        }
        acc0 + acc1 + acc2 + acc3 + tail
    }

    /// Dot product, unrolled over four independent accumulators.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            acc0 += ca[0] * cb[0];
            acc1 += ca[1] * cb[1];
            acc2 += ca[2] * cb[2];
            acc3 += ca[3] * cb[3];
        }
        let mut tail = 0.0f32;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            tail += x * y;
        }
        acc0 + acc1 + acc2 + acc3 + tail
    }

    /// The three angular reductions in one pass: `(a·b, ‖a‖², ‖b‖²)`
    /// (single accumulator each — the pre-SIMD angular kernel, kept
    /// bit-for-bit).
    #[inline]
    pub fn angular_parts(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        debug_assert_eq!(a.len(), b.len());
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        (dot, na, nb)
    }

    /// Angular distance from the scalar reductions.
    #[inline]
    pub fn angular_dist(a: &[f32], b: &[f32]) -> f32 {
        let (dot, na, nb) = angular_parts(a, b);
        super::angular_from_parts(dot, na, nb)
    }

    /// `‖a‖²` with the same accumulation sequence `angular_parts` uses for
    /// its `na` reduction, so batch callers can hoist the query norm
    /// without changing results.
    #[inline]
    pub(super) fn norm_sq(a: &[f32]) -> f32 {
        let mut na = 0.0f32;
        for &x in a {
            na += x * x;
        }
        na
    }

    /// `(a·b, ‖b‖²)` with the sequences `angular_parts` uses for `dot` and
    /// `nb`.
    #[inline]
    pub(super) fn dot_and_norm_sq(a: &[f32], b: &[f32]) -> (f32, f32) {
        let mut dot = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            nb += y * y;
        }
        (dot, nb)
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels
// ---------------------------------------------------------------------------

/// AVX2+FMA implementations. Safety: every function is
/// `#[target_feature(enable = "avx2", enable = "fma")]` and must only be
/// called after `is_x86_feature_detected!` confirmed both features (the
/// dispatcher guarantees this).
///
/// Layout of every reduction: two 8-lane accumulators over 16-element
/// chunks, then one 8-lane chunk if ≥8 elements remain, then a scalar tail
/// — the *same* sequence in the row kernels and the four-row blocked
/// kernels, which is what makes batch results bit-identical to row-by-row
/// calls.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum of one 256-bit accumulator, fixed reduction order.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf = _mm_movehl_ps(shuf, sums);
        let sums = _mm_add_ss(sums, shuf);
        _mm_cvtss_f32(sums)
    }

    /// One row's squared-distance accumulation: vector part into two
    /// accumulators plus the 8-lane overflow chunk, scalar tail appended
    /// after the horizontal reduction.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sq_dist_row(a: *const f32, b: *const f32, n: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let chunks = n / 16;
        for i in 0..chunks {
            let o = i * 16;
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(a.add(o)), _mm256_loadu_ps(b.add(o)));
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(a.add(o + 8)), _mm256_loadu_ps(b.add(o + 8)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        }
        let mut done = chunks * 16;
        if n - done >= 8 {
            let d = _mm256_sub_ps(_mm256_loadu_ps(a.add(done)), _mm256_loadu_ps(b.add(done)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            done += 8;
        }
        let mut sum = hsum(_mm256_add_ps(acc0, acc1));
        for i in done..n {
            let d = *a.add(i) - *b.add(i);
            sum = d.mul_add(d, sum);
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        sq_dist_row(a.as_ptr(), b.as_ptr(), a.len())
    }

    /// Four rows against one query: one shared query load per chunk, eight
    /// independent accumulator chains (two per row) — the register-blocked
    /// inner loop of the Evaluate phase.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sq_dist_rows4(
        q: *const f32,
        rows: [*const f32; 4],
        n: usize,
        out: &mut [f32],
        base: usize,
    ) {
        let mut acc0 = [_mm256_setzero_ps(); 4];
        let mut acc1 = [_mm256_setzero_ps(); 4];
        let chunks = n / 16;
        for i in 0..chunks {
            let o = i * 16;
            let q0 = _mm256_loadu_ps(q.add(o));
            let q1 = _mm256_loadu_ps(q.add(o + 8));
            for (r, &row) in rows.iter().enumerate() {
                let d0 = _mm256_sub_ps(q0, _mm256_loadu_ps(row.add(o)));
                let d1 = _mm256_sub_ps(q1, _mm256_loadu_ps(row.add(o + 8)));
                acc0[r] = _mm256_fmadd_ps(d0, d0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(d1, d1, acc1[r]);
            }
        }
        let mut done = chunks * 16;
        if n - done >= 8 {
            let q0 = _mm256_loadu_ps(q.add(done));
            for (r, &row) in rows.iter().enumerate() {
                let d = _mm256_sub_ps(q0, _mm256_loadu_ps(row.add(done)));
                acc0[r] = _mm256_fmadd_ps(d, d, acc0[r]);
            }
            done += 8;
        }
        for (r, &row) in rows.iter().enumerate() {
            let mut sum = hsum(_mm256_add_ps(acc0[r], acc1[r]));
            for i in done..n {
                let d = *q.add(i) - *row.add(i);
                sum = d.mul_add(d, sum);
            }
            out[base + r] = sum;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sq_dist_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
        let n = q.len();
        let qp = q.as_ptr();
        let rp = rows.as_ptr();
        let blocks = out.len() / 4;
        for blk in 0..blocks {
            let b = blk * 4;
            sq_dist_rows4(
                qp,
                [
                    rp.add(b * n),
                    rp.add((b + 1) * n),
                    rp.add((b + 2) * n),
                    rp.add((b + 3) * n),
                ],
                n,
                out,
                b,
            );
        }
        for (r, o) in out.iter_mut().enumerate().skip(blocks * 4) {
            *o = sq_dist_row(qp, rp.add(r * n), n);
        }
    }

    /// One row's dot-product accumulation (same chunking as
    /// [`sq_dist_row`]).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_row(a: *const f32, b: *const f32, n: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let chunks = n / 16;
        for i in 0..chunks {
            let o = i * 16;
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(o)), _mm256_loadu_ps(b.add(o)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(o + 8)),
                _mm256_loadu_ps(b.add(o + 8)),
                acc1,
            );
        }
        let mut done = chunks * 16;
        if n - done >= 8 {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(done)),
                _mm256_loadu_ps(b.add(done)),
                acc0,
            );
            done += 8;
        }
        let mut sum = hsum(_mm256_add_ps(acc0, acc1));
        for i in done..n {
            sum = (*a.add(i)).mul_add(*b.add(i), sum);
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        dot_row(a.as_ptr(), b.as_ptr(), a.len())
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
        let n = q.len();
        for (r, d) in out.iter_mut().enumerate() {
            *d = dot_row(q.as_ptr(), rows.as_ptr().add(r * n), n);
        }
    }

    /// The three angular reductions `(a·b, ‖a‖², ‖b‖²)`, each with its own
    /// accumulator pair over the shared chunk order.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn angular_parts(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len();
        let (dot, nb) = dot_and_norm_sq_row(a.as_ptr(), b.as_ptr(), n);
        let na = norm_sq_row(a.as_ptr(), n);
        (dot, na, nb)
    }

    /// `‖a‖²` (single row; own accumulator pair, shared chunk order).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn norm_sq_row(a: *const f32, n: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let chunks = n / 16;
        for i in 0..chunks {
            let o = i * 16;
            let x0 = _mm256_loadu_ps(a.add(o));
            let x1 = _mm256_loadu_ps(a.add(o + 8));
            acc0 = _mm256_fmadd_ps(x0, x0, acc0);
            acc1 = _mm256_fmadd_ps(x1, x1, acc1);
        }
        let mut done = chunks * 16;
        if n - done >= 8 {
            let x = _mm256_loadu_ps(a.add(done));
            acc0 = _mm256_fmadd_ps(x, x, acc0);
            done += 8;
        }
        let mut sum = hsum(_mm256_add_ps(acc0, acc1));
        for i in done..n {
            sum = (*a.add(i)).mul_add(*a.add(i), sum);
        }
        sum
    }

    /// `(a·b, ‖b‖²)` in one pass (shared loads of `b`).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_and_norm_sq_row(a: *const f32, b: *const f32, n: usize) -> (f32, f32) {
        let mut d0 = _mm256_setzero_ps();
        let mut d1 = _mm256_setzero_ps();
        let mut n0 = _mm256_setzero_ps();
        let mut n1 = _mm256_setzero_ps();
        let chunks = n / 16;
        for i in 0..chunks {
            let o = i * 16;
            let a0 = _mm256_loadu_ps(a.add(o));
            let a1 = _mm256_loadu_ps(a.add(o + 8));
            let b0 = _mm256_loadu_ps(b.add(o));
            let b1 = _mm256_loadu_ps(b.add(o + 8));
            d0 = _mm256_fmadd_ps(a0, b0, d0);
            d1 = _mm256_fmadd_ps(a1, b1, d1);
            n0 = _mm256_fmadd_ps(b0, b0, n0);
            n1 = _mm256_fmadd_ps(b1, b1, n1);
        }
        let mut done = chunks * 16;
        if n - done >= 8 {
            let a0 = _mm256_loadu_ps(a.add(done));
            let b0 = _mm256_loadu_ps(b.add(done));
            d0 = _mm256_fmadd_ps(a0, b0, d0);
            n0 = _mm256_fmadd_ps(b0, b0, n0);
            done += 8;
        }
        let mut dot = hsum(_mm256_add_ps(d0, d1));
        let mut nb = hsum(_mm256_add_ps(n0, n1));
        for i in done..n {
            dot = (*a.add(i)).mul_add(*b.add(i), dot);
            nb = (*b.add(i)).mul_add(*b.add(i), nb);
        }
        (dot, nb)
    }

    /// Per-64-bit-lane popcounts of one 256-bit vector via the nibble
    /// lookup (vpshufb) + byte-sum (vpsadbw) technique: each of the four
    /// `u64` lanes of the result holds the popcount of the corresponding
    /// input lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_lanes(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Batch popcount Hamming over a block-packed code tile. The 1-, 2-,
    /// and 4-block layouts (m ≤ 64, 128, 256) each map a whole 256-bit
    /// vector to 4/2/1 codes; other block counts take the scalar row loop.
    /// Integer arithmetic, so every path is bit-identical to
    /// `scalar::hamming_row`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn hamming_batch(query: &[u64], codes: &[u64], out: &mut [u32]) {
        let blocks = query.len();
        let mut lanes = [0u64; 4];
        match blocks {
            1 => {
                let q = _mm256_set1_epi64x(query[0] as i64);
                let vecs = out.len() / 4;
                for i in 0..vecs {
                    let v = _mm256_loadu_si256(codes.as_ptr().add(i * 4) as *const __m256i);
                    let p = popcnt_lanes(_mm256_xor_si256(q, v));
                    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, p);
                    for l in 0..4 {
                        out[i * 4 + l] = lanes[l] as u32;
                    }
                }
                for r in vecs * 4..out.len() {
                    out[r] = (query[0] ^ codes[r]).count_ones();
                }
            }
            2 => {
                let q = _mm256_setr_epi64x(
                    query[0] as i64,
                    query[1] as i64,
                    query[0] as i64,
                    query[1] as i64,
                );
                let vecs = out.len() / 2;
                for i in 0..vecs {
                    let v = _mm256_loadu_si256(codes.as_ptr().add(i * 4) as *const __m256i);
                    let p = popcnt_lanes(_mm256_xor_si256(q, v));
                    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, p);
                    out[i * 2] = (lanes[0] + lanes[1]) as u32;
                    out[i * 2 + 1] = (lanes[2] + lanes[3]) as u32;
                }
                if out.len() % 2 == 1 {
                    let r = out.len() - 1;
                    out[r] = super::scalar::hamming_row(query, &codes[r * 2..r * 2 + 2]);
                }
            }
            4 => {
                let q = _mm256_loadu_si256(query.as_ptr() as *const __m256i);
                for (i, o) in out.iter_mut().enumerate() {
                    let v = _mm256_loadu_si256(codes.as_ptr().add(i * 4) as *const __m256i);
                    let p = popcnt_lanes(_mm256_xor_si256(q, v));
                    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, p);
                    *o = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32;
                }
            }
            _ => {
                for (row, d) in codes.chunks_exact(blocks.max(1)).zip(out.iter_mut()) {
                    *d = super::scalar::hamming_row(query, row);
                }
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn angular_batch(q: &[f32], rows: &[f32], out: &mut [f32]) {
        let n = q.len();
        let na = norm_sq_row(q.as_ptr(), n);
        for (r, d) in out.iter_mut().enumerate() {
            let (dot, nb) = dot_and_norm_sq_row(q.as_ptr(), rows.as_ptr().add(r * n), n);
            *d = super::angular_from_parts(dot, na, nb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Deterministic splitmix64-derived values in [-2, 2).
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 22) as f32 - 2.0
        };
        let a: Vec<f32> = (0..len).map(|_| next()).collect();
        let b: Vec<f32> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn dispatch_is_stable_and_named() {
        let k = active_kernel();
        assert_eq!(k, active_kernel(), "dispatch must be cached");
        assert!(matches!(k.name(), "avx2_fma" | "scalar"));
        assert_eq!(kernel_name(), k.name());
        if force_scalar_requested() {
            assert_eq!(k, KernelKind::Scalar);
        }
    }

    #[test]
    fn dispatched_matches_scalar_closely() {
        for len in [1usize, 3, 7, 8, 15, 16, 17, 31, 64, 127, 960] {
            let (a, b) = vecs(len, len as u64);
            let tol = (len as f32 + 8.0) * f32::EPSILON * 64.0;
            let s = scalar::sq_dist(&a, &b);
            assert!(
                (sq_dist_f32(&a, &b) - s).abs() <= tol * s.max(1.0),
                "sq_dist len {len}"
            );
            let sd = scalar::dot(&a, &b);
            assert!(
                (dot_f32(&a, &b) - sd).abs() <= tol * sd.abs().max(1.0),
                "dot len {len}"
            );
            let sa = scalar::angular_dist(&a, &b);
            assert!(
                (angular_dist_f32(&a, &b) - sa).abs() <= 1e-4,
                "angular len {len}"
            );
        }
    }

    #[test]
    fn batch_bit_identical_to_row_kernel() {
        for len in [1usize, 5, 8, 16, 23, 128, 960] {
            let (q, _) = vecs(len, 7);
            let n_rows = 9; // exercises the 4-row blocks and the remainder
            let mut rows = Vec::with_capacity(n_rows * len);
            for r in 0..n_rows {
                rows.extend_from_slice(&vecs(len, 100 + r as u64).0);
            }
            let mut out = vec![0.0f32; n_rows];
            sq_dist_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    sq_dist_f32(&q, row).to_bits(),
                    "sq_dist row {r} len {len}"
                );
            }
            dot_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    dot_f32(&q, row).to_bits(),
                    "dot row {r} len {len}"
                );
            }
            angular_dist_batch(&q, &rows, &mut out);
            for (r, row) in rows.chunks_exact(len).enumerate() {
                assert_eq!(
                    out[r].to_bits(),
                    angular_dist_f32(&q, row).to_bits(),
                    "angular row {r} len {len}"
                );
            }
        }
    }

    #[test]
    fn score_block_gathers_and_scores_in_push_order() {
        let dim = 13;
        let (q, _) = vecs(dim, 1);
        let mut block = ScoreBlock::with_rows(dim, 4);
        assert!(block.is_empty());
        let rows: Vec<Vec<f32>> = (0..6).map(|r| vecs(dim, 50 + r).0).collect();
        let mut got = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if block.is_full() {
                block.flush(&q, Metric::SquaredEuclidean, |id, d| got.push((id, d)));
            }
            block.push(10 * i as u32, row);
        }
        let flushed = block.flush(&q, Metric::SquaredEuclidean, |id, d| got.push((id, d)));
        assert_eq!(flushed, 2, "ragged final tile");
        assert!(block.is_empty());
        assert_eq!(got.len(), 6);
        for (i, (id, d)) in got.iter().enumerate() {
            assert_eq!(*id, 10 * i as u32);
            assert_eq!(d.to_bits(), sq_dist_f32(&q, &rows[i]).to_bits());
        }
    }

    #[test]
    fn score_block_ensure_dim_retargets() {
        let mut block = ScoreBlock::new(8);
        block.push(1, &[0.0; 8]);
        block.ensure_dim(3);
        assert!(block.is_empty());
        assert_eq!(block.dim(), 3);
        block.push(2, &[1.0, 2.0, 3.0]);
        let mut n = 0;
        block.flush(&[0.0, 0.0, 0.0], Metric::SquaredEuclidean, |id, d| {
            assert_eq!(id, 2);
            assert_eq!(d, 14.0);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut block = ScoreBlock::new(4);
        let n = block.flush(&[0.0; 4], Metric::SquaredEuclidean, |_, _| {
            panic!("no rows to score")
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn angular_batch_zero_norm_convention() {
        let q = [0.0f32, 0.0];
        let rows = [1.0f32, 2.0, 0.0, 0.0];
        let mut out = [0.0f32; 2];
        angular_dist_batch(&q, &rows, &mut out);
        assert_eq!(out, [1.0, 1.0], "zero query is orthogonal to everything");
    }
}
