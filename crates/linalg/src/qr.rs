//! QR factorization and random orthogonal matrices.

use crate::matrix::Matrix;
use rand::Rng;

/// QR factorization `A = Q · R` by modified Gram–Schmidt with one
/// re-orthogonalization pass ("twice is enough").
///
/// For an `r×c` input with `r ≥ c`, returns thin `Q` (`r×c`, orthonormal
/// columns) and upper-triangular `R` (`c×c`). Columns that collapse to zero
/// (rank deficiency) are replaced with vectors orthogonal to the previous
/// ones so `Q` is always orthonormal.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (rows, cols) = a.shape();
    assert!(rows >= cols, "qr expects rows >= cols (thin QR)");
    let mut q = a.clone();
    let mut r = Matrix::zeros(cols, cols);

    for j in 0..cols {
        // Two orthogonalization passes for stability.
        for _pass in 0..2 {
            for i in 0..j {
                let mut proj = 0.0;
                for k in 0..rows {
                    proj += q[(k, i)] * q[(k, j)];
                }
                r[(i, j)] += proj;
                for k in 0..rows {
                    let qki = q[(k, i)];
                    q[(k, j)] -= proj * qki;
                }
            }
        }
        let mut norm = 0.0;
        for k in 0..rows {
            norm += q[(k, j)] * q[(k, j)];
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            r[(j, j)] = norm;
            for k in 0..rows {
                q[(k, j)] /= norm;
            }
        } else {
            // Rank-deficient column: substitute any unit vector orthogonal to
            // the ones already produced; R gets a zero diagonal entry.
            r[(j, j)] = 0.0;
            'seed: for seed in 0..rows {
                for k in 0..rows {
                    q[(k, j)] = if k == seed { 1.0 } else { 0.0 };
                }
                for i in 0..j {
                    let mut proj = 0.0;
                    for k in 0..rows {
                        proj += q[(k, i)] * q[(k, j)];
                    }
                    for k in 0..rows {
                        let qki = q[(k, i)];
                        q[(k, j)] -= proj * qki;
                    }
                }
                let mut n2 = 0.0;
                for k in 0..rows {
                    n2 += q[(k, j)] * q[(k, j)];
                }
                if n2.sqrt() > 1e-6 {
                    let n = n2.sqrt();
                    for k in 0..rows {
                        q[(k, j)] /= n;
                    }
                    break 'seed;
                }
            }
        }
    }
    (q, r)
}

/// Random matrix with orthonormal columns (`rows×cols`, `rows ≥ cols`),
/// drawn Haar-like by QR of an iid Gaussian matrix.
pub fn random_orthonormal<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    assert!(rows >= cols);
    let mut g = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            g[(i, j)] = gaussian(rng);
        }
    }
    let (mut q, r) = qr(&g);
    // Fix signs by R's diagonal so the distribution is Haar.
    for j in 0..cols {
        if r[(j, j)] < 0.0 {
            for i in 0..rows {
                q[(i, j)] = -q[(i, j)];
            }
        }
    }
    q
}

/// Random `n×n` rotation (orthogonal matrix).
pub fn random_rotation<R: Rng>(n: usize, rng: &mut R) -> Matrix {
    random_orthonormal(n, n, rng)
}

/// Standard normal via Box–Muller (avoids pulling in `rand_distr`).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn qr_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let (q, r) = qr(&a);
        assert!(q.is_orthonormal(1e-10));
        assert!(q.matmul(&r).distance(&a) < 1e-10);
        // R upper triangular.
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn qr_rank_deficient_still_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let (q, _r) = qr(&a);
        assert!(q.is_orthonormal(1e-8));
    }

    #[test]
    fn random_rotation_is_orthogonal() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 2, 5, 16] {
            let rot = random_rotation(n, &mut rng);
            assert!(rot.is_orthonormal(1e-9), "n={n}");
            // Determinant ±1 implied by orthogonality; rotation preserves norms.
            let v: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let rv = rot.matvec(&v);
            let n1: f64 = v.iter().map(|x| x * x).sum();
            let n2: f64 = rv.iter().map(|x| x * x).sum();
            assert!((n1 - n2).abs() < 1e-8);
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
