//! Little-endian byte codec and CRC32 shared by the binary snapshot format.
//!
//! Every crate that persists a trained artifact (hash models in `gqr-l2h`,
//! PQ/OPQ/IMI codebooks in `gqr-vq`, MPLSH tables in `gqr-mplsh`, hash tables
//! and MIH blocks in `gqr-core`) encodes its payload with [`ByteWriter`] /
//! [`ByteReader`] and lets `gqr-core::persist` wrap the payloads in a
//! checksummed, sectioned container. This module sits at the bottom of the
//! workspace dependency graph so all of them can share one codec.
//!
//! Encoding rules: all integers and floats are little-endian; slices are
//! length-prefixed with a `u64` element count. Readers never panic on
//! malformed input — every decode returns a [`WireError`], and slice lengths
//! are validated against the remaining buffer *before* allocating, so a
//! corrupt length cannot trigger an out-of-memory abort.

use crate::matrix::Matrix;
use crate::pca::Pca;

/// Errors produced when decoding a byte payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The bytes decoded but described an impossible value (bad tag,
    /// inconsistent lengths, arithmetic overflow in a size field).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "payload truncated: needed {needed} bytes, have {have}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

/// Reflected IEEE 802.3 polynomial (the one used by zip/png/ethernet).
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Table-driven CRC32 (IEEE, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a little-endian IEEE-754 `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`-length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append a `u64`-length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Append a `u64`-length-prefixed `i32` slice.
    pub fn put_i32_slice(&mut self, v: &[i32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x as u32);
        }
    }

    /// Append a `u64`-length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Append a `u64`-length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Append a matrix: rows, cols, then `rows*cols` row-major `f64`s.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for v in m.as_slice() {
            self.put_f64(*v);
        }
    }

    /// Append a PCA basis (mean, components, explained variance).
    pub fn put_pca(&mut self, pca: &Pca) {
        self.put_f64_slice(&pca.mean);
        self.put_matrix(&pca.components);
        self.put_f64_slice(&pca.explained_variance);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Cursor over an encoded byte payload. All reads are checked.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless every byte has been consumed (guards against payloads
    /// with trailing garbage that a shorter schema would silently accept).
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` and convert to `usize`, rejecting values that do not fit.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::Malformed("size exceeds usize"))
    }

    /// Read a little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length prefix for elements of `elem_size` bytes, validating it
    /// against the remaining buffer before any allocation happens.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        let bytes = len
            .checked_mul(elem_size)
            .ok_or(WireError::Malformed("slice length overflows"))?;
        if bytes > self.remaining() {
            return Err(WireError::Truncated {
                needed: bytes,
                have: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Read a length-prefixed `u64` slice.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed `i32` slice.
    pub fn get_i32_vec(&mut self) -> Result<Vec<i32>, WireError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_u32().map(|v| v as i32)).collect()
    }

    /// Read a length-prefixed `f32` slice.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_f32()).collect()
    }

    /// Read a length-prefixed `f64` slice.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Read a matrix written by [`ByteWriter::put_matrix`].
    pub fn get_matrix(&mut self) -> Result<Matrix, WireError> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or(WireError::Malformed("matrix dimensions overflow"))?;
        let bytes = n
            .checked_mul(8)
            .ok_or(WireError::Malformed("matrix dimensions overflow"))?;
        if bytes > self.remaining() {
            return Err(WireError::Truncated {
                needed: bytes,
                have: self.remaining(),
            });
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.get_f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Read a PCA basis written by [`ByteWriter::put_pca`].
    pub fn get_pca(&mut self) -> Result<Pca, WireError> {
        let mean = self.get_f64_vec()?;
        let components = self.get_matrix()?;
        let explained_variance = self.get_f64_vec()?;
        if components.cols() != mean.len() {
            return Err(WireError::Malformed("PCA mean/components shape mismatch"));
        }
        if components.rows() != explained_variance.len() {
            return Err(WireError::Malformed(
                "PCA variance/components shape mismatch",
            ));
        }
        Ok(Pca {
            mean,
            components,
            explained_variance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[9]);
        w.put_i32_slice(&[-4, 5]);
        w.put_f32_slice(&[0.5, -0.5]);
        w.put_f64_slice(&[]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![9]);
        assert_eq!(r.get_i32_vec().unwrap(), vec![-4, 5]);
        assert_eq!(r.get_f32_vec().unwrap(), vec![0.5, -0.5]);
        assert_eq!(r.get_f64_vec().unwrap(), Vec::<f64>::new());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(
            r.get_u64(),
            Err(WireError::Truncated { needed: 8, have: 5 })
        ));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64_vec().is_err());
    }

    #[test]
    fn matrix_and_pca_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let pca = Pca {
            mean: vec![0.5, -0.5],
            components: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            explained_variance: vec![2.0, 1.0],
        };
        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        w.put_pca(&pca);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let m2 = r.get_matrix().unwrap();
        assert_eq!(m2.rows(), 3);
        assert_eq!(m2.cols(), 2);
        assert_eq!(m2.as_slice(), m.as_slice());
        let p2 = r.get_pca().unwrap();
        assert_eq!(p2.mean, pca.mean);
        assert_eq!(p2.components.as_slice(), pca.components.as_slice());
        assert_eq!(p2.explained_variance, pca.explained_variance);
        r.expect_end().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.expect_end().is_err());
    }
}
