//! Vector kernels shared across the workspace (f64 training math).

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Normalize to unit length; returns the original norm. Zero vectors are
/// left untouched and return 0.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Squared Euclidean distance for the `f32` item vectors used at query time.
///
/// Accumulates in `f32`; this is the hot exact re-rank kernel and matches how
/// ANN systems (FAISS, the paper's C++ release) evaluate candidates. Since
/// the kernel-layer refactor this dispatches at runtime to the best
/// implementation for the host CPU — see [`crate::kernels`] for the
/// dispatch rules, the batch variants, and the `GQR_FORCE_SCALAR` override.
pub use crate::kernels::sq_dist_f32;

/// Dot product over `f32` rows, runtime-dispatched (see [`crate::kernels`]).
pub use crate::kernels::dot_f32;

/// Distance metric used for exact candidate evaluation and ground truth.
///
/// The paper analyzes QD for Euclidean distance and notes (§4) that "other
/// similarity metrics such as angular distance can also be adapted": the
/// probing order still comes from QD over the projections; only the re-rank
/// kernel changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance (the paper's setting).
    #[default]
    SquaredEuclidean,
    /// Angular distance `1 − cos(a, b)` (zero vectors are treated as
    /// orthogonal to everything: distance 1).
    Angular,
}

impl Metric {
    /// Evaluate the metric between two vectors.
    #[inline]
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredEuclidean => sq_dist_f32(a, b),
            Metric::Angular => angular_dist_f32(a, b),
        }
    }

    /// Evaluate the metric between one query and a tile of contiguous rows
    /// (`rows.len() == q.len() * out.len()`). Bit-identical to calling
    /// [`Metric::eval`] per row under the same dispatched kernel.
    #[inline]
    pub fn eval_batch(&self, q: &[f32], rows: &[f32], out: &mut [f32]) {
        match self {
            Metric::SquaredEuclidean => crate::kernels::sq_dist_batch(q, rows, out),
            Metric::Angular => crate::kernels::angular_dist_batch(q, rows, out),
        }
    }
}

/// Angular distance `1 − cos(a, b)`, in `[0, 2]`. Zero-norm inputs yield 1.
/// Runtime-dispatched (see [`crate::kernels`]).
pub use crate::kernels::angular_dist_f32;

/// Mean of a set of rows, each of dimension `dim`.
pub fn mean_rows(rows: &[f32], dim: usize) -> Vec<f64> {
    assert!(dim > 0 && rows.len().is_multiple_of(dim));
    let n = rows.len() / dim;
    let mut mean = vec![0.0f64; dim];
    for row in rows.chunks_exact(dim) {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x as f64;
        }
    }
    if n > 0 {
        scale(&mut mean, 1.0 / n as f64);
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn sq_dist_f32_matches_naive_on_odd_lengths() {
        for len in [1usize, 3, 4, 5, 7, 8, 13] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..len).map(|i| (len - i) as f32 * -0.25).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((sq_dist_f32(&a, &b) - naive).abs() < 1e-3, "len {len}");
        }
    }

    #[test]
    fn angular_distance_basics() {
        let e1 = [1.0f32, 0.0];
        let e2 = [0.0f32, 1.0];
        assert!((angular_dist_f32(&e1, &e1)).abs() < 1e-6);
        assert!((angular_dist_f32(&e1, &e2) - 1.0).abs() < 1e-6);
        assert!((angular_dist_f32(&e1, &[-2.0, 0.0]) - 2.0).abs() < 1e-6);
        // Scale invariance.
        assert!(
            (angular_dist_f32(&e1, &[5.0, 5.0]) - angular_dist_f32(&e1, &[0.1, 0.1])).abs() < 1e-6
        );
        // Zero vector convention.
        assert_eq!(angular_dist_f32(&e1, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        assert_eq!(Metric::SquaredEuclidean.eval(&a, &b), sq_dist_f32(&a, &b));
        assert_eq!(Metric::Angular.eval(&a, &b), angular_dist_f32(&a, &b));
        assert_eq!(Metric::default(), Metric::SquaredEuclidean);
    }

    #[test]
    fn mean_rows_simple() {
        let rows = [1.0f32, 2.0, 3.0, 4.0]; // two rows of dim 2
        let m = mean_rows(&rows, 2);
        assert_eq!(m, vec![2.0, 3.0]);
    }
}
