//! Small dense linear algebra for the `gqr` workspace.
//!
//! Learning-to-hash trainers (PCAH, ITQ, SH) and the OPQ comparator need a
//! handful of dense kernels over small matrices: covariance eigendecomposition
//! (`d×d`, `d ≤ ~1000`), SVD of `m×m` correlation matrices (`m ≤ 64`), QR for
//! random rotations, and PCA. This crate implements exactly that subset with
//! `f64` accumulation; it is not a general-purpose BLAS.
//!
//! All matrices are dense and row-major ([`Matrix`]). Decompositions:
//!
//! * [`eigen::symmetric_eigen`] — cyclic Jacobi for symmetric matrices
//!   (unconditionally convergent, exact enough for covariance spectra).
//! * [`svd::svd`] — thin SVD built from the Jacobi eigendecomposition of the
//!   Gram matrix, with sign/orientation fix-ups.
//! * [`qr::qr`] — modified Gram–Schmidt with re-orthogonalization.
//! * [`pca::Pca`] — mean-centering + top-k principal directions.
//!
//! # Example
//!
//! ```
//! use gqr_linalg::{Matrix, symmetric_eigen};
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
//! let e = symmetric_eigen(&a);
//! assert!((e.values[0] - 3.0).abs() < 1e-10);
//! assert!((e.values[1] - 1.0).abs() < 1e-10);
//! ```

#![warn(missing_docs)]
pub mod eigen;
pub mod kernels;
pub mod matrix;
pub mod pca;
pub mod qr;
pub mod svd;
pub mod vecops;
pub mod wire;

pub use eigen::{symmetric_eigen, Eigen};
pub use kernels::{
    angular_dist_batch, dot_batch, kernel_name, sq_dist_batch, ScoreBlock, TILE_ROWS,
};
pub use matrix::Matrix;
pub use pca::Pca;
pub use qr::{qr, random_orthonormal, random_rotation};
pub use svd::{svd, Svd};
pub use wire::{crc32, ByteReader, ByteWriter, WireError};
