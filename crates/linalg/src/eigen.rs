//! Symmetric eigendecomposition via cyclic Jacobi rotations.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V · diag(values) · Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order; `vectors` holds the
/// corresponding eigenvectors as **columns**.
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, same order as `values`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix using the cyclic Jacobi method.
///
/// Jacobi is quadratic-cost per sweep but unconditionally convergent and
/// backward-stable, which is exactly right for the small covariance and Gram
/// matrices (`n ≤ ~1000`) this workspace produces. Panics if `a` is not
/// square; symmetry is enforced by averaging `a` with its transpose, so tiny
/// asymmetries from accumulation order are tolerated.
pub fn symmetric_eigen(a: &Matrix) -> Eigen {
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen needs a square matrix");
    let n = a.rows();
    // Work on a symmetrized copy.
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
        }
        s.sqrt()
    };

    let scale = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable rotation computation (Golub & Van Loan, Alg. 8.4.1).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation J(p,q,θ): M ← Jᵀ M J, updating rows/cols p,q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: V ← V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| {
        diag[j]
            .partial_cmp(&diag[i])
            .expect("eigenvalues are finite")
    });

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        e.vectors.matmul(&lam).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // A mildly ill-conditioned symmetric matrix.
        let mut a = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                a[(i, j)] = 1.0 / (1.0 + i as f64 + j as f64); // Hilbert-like
            }
        }
        let e = symmetric_eigen(&a);
        assert!(e.vectors.is_orthonormal(1e-9));
        assert!(reconstruct(&e).distance(&a) < 1e-9);
    }

    #[test]
    fn negative_eigenvalues_handled() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!((e.values[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[42.0]]);
        let e = symmetric_eigen(&a);
        assert_eq!(e.values, vec![42.0]);
        assert_eq!(e.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn asymmetry_is_symmetrized() {
        let a = Matrix::from_rows(&[&[2.0, 1.0 + 1e-13], &[1.0 - 1e-13, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-9);
    }
}
