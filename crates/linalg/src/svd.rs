//! Thin singular value decomposition built on the Jacobi eigensolver.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;

/// Thin SVD `A = U · diag(singular_values) · Vᵀ`.
///
/// For an `r×c` input, `u` is `r×k`, `v` is `c×k` with `k = min(r, c)`.
/// Singular values are non-negative and sorted descending.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors as columns (`r×k`).
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors as columns (`c×k`).
    pub v: Matrix,
}

/// Compute the thin SVD of `a` via the eigendecomposition of the smaller Gram
/// matrix (`AᵀA` or `AAᵀ`).
///
/// The Gram-matrix route squares the condition number, which is fine here:
/// the workspace only decomposes small, well-conditioned correlation matrices
/// (ITQ's `m×m` update, OPQ's `d×d` rotation solve). Singular vectors paired
/// with numerically-zero singular values are completed to an orthonormal
/// basis by Gram–Schmidt against the already-recovered ones.
pub fn svd(a: &Matrix) -> Svd {
    let (r, c) = a.shape();
    assert!(r > 0 && c > 0, "svd of empty matrix");
    if r >= c {
        // Eigen of AᵀA (c×c): A v_i = σ_i u_i.
        let gram = a.transpose().matmul(a);
        let e = symmetric_eigen(&gram);
        let k = c;
        let singular_values: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = e.vectors; // c×c
        let mut u = Matrix::zeros(r, k);
        let scale_floor = singular_values.first().copied().unwrap_or(0.0) * 1e-9;
        let mut degenerate = Vec::new();
        for i in 0..k {
            let vi = v.col(i);
            let avi = a.matvec(&vi);
            if singular_values[i] > scale_floor && singular_values[i] > 0.0 {
                for (row, &x) in avi.iter().enumerate() {
                    u[(row, i)] = x / singular_values[i];
                }
            } else {
                degenerate.push(i);
            }
        }
        complete_basis(&mut u, &degenerate);
        // `A·v/σ` amplifies eigenvector error by σ_max/σ, so columns paired
        // with small singular values drift from orthogonality. One MGS QR
        // pass (columns are already ordered by descending σ, so the accurate
        // leading columns are untouched) restores an orthonormal U.
        let (q, _) = crate::qr::qr(&u);
        Svd {
            u: q,
            singular_values,
            v,
        }
    } else {
        // Transpose trick: svd(Aᵀ) then swap U/V.
        let s = svd(&a.transpose());
        Svd {
            u: s.v,
            singular_values: s.singular_values,
            v: s.u,
        }
    }
}

/// Fill the listed columns of `m` with unit vectors orthogonal to all other
/// columns (modified Gram–Schmidt against the full matrix).
fn complete_basis(m: &mut Matrix, cols: &[usize]) {
    if cols.is_empty() {
        return;
    }
    let (rows, k) = m.shape();
    for &ci in cols {
        // Try canonical basis vectors until one survives orthogonalization.
        'attempt: for seed in 0..rows {
            let mut cand = vec![0.0f64; rows];
            cand[seed] = 1.0;
            for other in 0..k {
                if other == ci {
                    continue;
                }
                let proj: f64 = (0..rows).map(|r| cand[r] * m[(r, other)]).sum();
                for r in 0..rows {
                    cand[r] -= proj * m[(r, other)];
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for r in 0..rows {
                    m[(r, ci)] = cand[r] / norm;
                }
                break 'attempt;
            }
        }
    }
}

/// Solve the orthogonal Procrustes problem: the orthogonal `R` minimizing
/// `‖A − B·R‖_F`, i.e. `R = V·Uᵀ` where `BᵀA = U·Σ·Vᵀ`... with the convention
/// used by ITQ's update step: given `C = BᵀV` (correlation between target
/// codes and projections), the optimal rotation is `R = S·Ŝᵀ` for
/// `C = Ŝ·Ω·Sᵀ`.
///
/// Concretely: returns the orthogonal matrix `R = V_svd · U_svdᵀ` of
/// `svd(c)`, which maximizes `trace(Rᵀ·c)` over orthogonal `R`... i.e. the
/// nearest orthogonal matrix to `c` (polar factor).
pub fn nearest_orthogonal(c: &Matrix) -> Matrix {
    assert_eq!(c.rows(), c.cols(), "polar factor needs a square matrix");
    let s = svd(c);
    s.u.matmul(&s.v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(s: &Svd) -> Matrix {
        let k = s.singular_values.len();
        let mut sig = Matrix::zeros(k, k);
        for i in 0..k {
            sig[(i, i)] = s.singular_values[i];
        }
        s.u.matmul(&sig).matmul(&s.v.transpose())
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let s = svd(&a);
        assert!((s.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((s.singular_values[1] - 3.0).abs() < 1e-10);
        assert!(reconstruct(&s).distance(&a) < 1e-9);
    }

    #[test]
    fn svd_rectangular_tall() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = svd(&a);
        assert_eq!(s.u.shape(), (3, 2));
        assert_eq!(s.v.shape(), (2, 2));
        assert!(reconstruct(&s).distance(&a) < 1e-9);
        assert!(s.u.is_orthonormal(1e-9));
        assert!(s.v.is_orthonormal(1e-9));
    }

    #[test]
    fn svd_rectangular_wide() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = svd(&a);
        assert_eq!(s.u.shape(), (2, 2));
        assert_eq!(s.v.shape(), (3, 2));
        assert!(reconstruct(&s).distance(&a) < 1e-9);
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 matrix: second singular value 0, basis still orthonormal.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let s = svd(&a);
        assert!(s.singular_values[1].abs() < 1e-9);
        assert!(s.u.is_orthonormal(1e-8));
        assert!(reconstruct(&s).distance(&a) < 1e-8);
    }

    #[test]
    fn singular_values_nonnegative_descending() {
        let a = Matrix::from_rows(&[&[0.0, -2.0], &[1.0, 0.0]]);
        let s = svd(&a);
        assert!(s.singular_values[0] >= s.singular_values[1]);
        assert!(s.singular_values[1] >= 0.0);
        assert!((s.singular_values[0] - 2.0).abs() < 1e-10);
        assert!((s.singular_values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nearest_orthogonal_of_rotationish() {
        // Slightly perturbed rotation should snap back to an orthogonal matrix.
        let t = 0.3f64;
        let a = Matrix::from_rows(&[&[t.cos() + 0.01, -t.sin()], &[t.sin(), t.cos() - 0.02]]);
        let r = nearest_orthogonal(&a);
        assert!(r.is_orthonormal(1e-9));
        // Should be close to the original rotation.
        assert!(r[(0, 0)] > 0.9 && r[(1, 1)] > 0.9);
    }
}
