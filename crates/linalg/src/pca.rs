//! Principal component analysis over `f32` row-major datasets.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;
use crate::vecops::mean_rows;

/// Fitted PCA model: dataset mean plus the top-`k` principal directions.
///
/// Directions are stored as rows of `components` (`k×d`), sorted by
/// explained variance (descending). Projection of an item `x` is
/// `components · (x − mean)`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pca {
    /// Dataset mean (`d`).
    pub mean: Vec<f64>,
    /// Principal directions as rows (`k×d`).
    pub components: Matrix,
    /// Variance captured by each component, descending (`k`).
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit PCA on `n` rows of dimension `dim` stored contiguously in `data`,
    /// keeping the top `k ≤ dim` components.
    ///
    /// Cost is `O(n·d²)` for the covariance plus a `d×d` Jacobi solve — fine
    /// for the descriptor dimensionalities (`d ≤ ~1000`) used here. Panics if
    /// `k > dim` or `data` is not a multiple of `dim`.
    pub fn fit(data: &[f32], dim: usize, k: usize) -> Pca {
        assert!(dim > 0 && k > 0 && k <= dim, "need 0 < k <= dim");
        assert!(
            data.len().is_multiple_of(dim),
            "data length must be a multiple of dim"
        );
        let n = data.len() / dim;
        assert!(n > 1, "PCA needs at least two rows");

        let mean = mean_rows(data, dim);
        // Covariance C = (1/(n-1)) Σ (x−µ)(x−µ)ᵀ, accumulated in f64.
        let mut cov = Matrix::zeros(dim, dim);
        let mut centered = vec![0.0f64; dim];
        for row in data.chunks_exact(dim) {
            for ((c, &x), m) in centered.iter_mut().zip(row).zip(&mean) {
                *c = x as f64 - m;
            }
            for i in 0..dim {
                let ci = centered[i];
                if ci == 0.0 {
                    continue;
                }
                // Upper triangle only; mirrored below.
                let cov_row = cov.row_mut(i);
                for j in i..dim {
                    cov_row[j] += ci * centered[j];
                }
            }
        }
        let scale = 1.0 / (n as f64 - 1.0);
        for i in 0..dim {
            for j in i..dim {
                let v = cov[(i, j)] * scale;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }

        let eig = symmetric_eigen(&cov);
        let mut components = Matrix::zeros(k, dim);
        for c in 0..k {
            for r in 0..dim {
                components[(c, r)] = eig.vectors[(r, c)];
            }
        }
        Pca {
            mean,
            components,
            explained_variance: eig.values[..k].to_vec(),
        }
    }

    /// Project one item onto the principal directions.
    pub fn project(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len());
        let centered: Vec<f64> = x
            .iter()
            .zip(&self.mean)
            .map(|(&xi, m)| xi as f64 - m)
            .collect();
        self.components.matvec(&centered)
    }

    /// Project every row of a dataset; returns an `n×k` matrix.
    pub fn project_all(&self, data: &[f32], dim: usize) -> Matrix {
        assert_eq!(dim, self.mean.len());
        let n = data.len() / dim;
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let p = self.project(row);
            out.row_mut(i).copy_from_slice(&p);
        }
        out
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D data stretched along the (1,1) diagonal: first component must align
    /// with the diagonal and capture most of the variance.
    #[test]
    fn recovers_dominant_direction() {
        let mut data = Vec::new();
        for i in 0..200 {
            let t = (i as f32 / 100.0) - 1.0; // [-1, 1)
            let noise = ((i * 37) % 17) as f32 / 170.0 - 0.05;
            data.push(10.0 * t + noise);
            data.push(10.0 * t - noise);
        }
        let pca = Pca::fit(&data, 2, 2);
        let c0 = pca.components.row(0);
        let cos = (c0[0] + c0[1]).abs() / (2.0f64).sqrt();
        assert!(cos > 0.999, "first PC not aligned with diagonal: {c0:?}");
        assert!(pca.explained_variance[0] > 50.0 * pca.explained_variance[1]);
    }

    #[test]
    fn projection_is_mean_centered() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 rows, dim 2
        let pca = Pca::fit(&data, 2, 1);
        // Projections of the three points must sum to ~0 (mean removed).
        let s: f64 = data.chunks_exact(2).map(|r| pca.project(r)[0]).sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut data = Vec::new();
        for i in 0..50 {
            for j in 0..4 {
                data.push(((i * (j + 3) + j * j) % 23) as f32 - 11.0);
            }
        }
        let pca = Pca::fit(&data, 4, 3);
        let ct = pca.components.transpose(); // d×k
        assert!(ct.is_orthonormal(1e-8));
    }

    #[test]
    fn explained_variance_descending() {
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(i as f32);
            data.push((i % 7) as f32);
            data.push((i % 3) as f32);
        }
        let pca = Pca::fit(&data, 3, 3);
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
        assert!(pca.explained_variance[1] >= pca.explained_variance[2]);
    }

    #[test]
    fn project_all_matches_project() {
        let data = vec![1.0f32, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5];
        let pca = Pca::fit(&data, 2, 2);
        let all = pca.project_all(&data, 2);
        for (i, row) in data.chunks_exact(2).enumerate() {
            let p = pca.project(row);
            assert!((all[(i, 0)] - p[0]).abs() < 1e-12);
            assert!((all[(i, 1)] - p[1]).abs() < 1e-12);
        }
    }
}
