//! Optimized product quantization (Ge et al., CVPR 2013), non-parametric
//! variant: alternately optimize a global rotation `R` and the PQ codebooks.

use crate::pq::{PqOptions, ProductQuantizer};
use gqr_linalg::{svd::svd, Matrix};

/// A trained OPQ model: an orthogonal rotation followed by a product
/// quantizer in the rotated space.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Opq {
    /// Orthogonal `d×d` rotation applied before quantization.
    rotation: Matrix,
    /// Product quantizer trained on rotated data.
    pq: ProductQuantizer,
}

/// Training options for [`Opq::train`].
#[derive(Clone, Debug)]
pub struct OpqOptions {
    /// Alternating optimization rounds (rotation ↔ codebooks).
    pub rounds: usize,
    /// PQ settings used in each round.
    pub pq: PqOptions,
}

impl Default for OpqOptions {
    fn default() -> Self {
        OpqOptions {
            rounds: 8,
            pq: PqOptions::default(),
        }
    }
}

impl Opq {
    /// Train OPQ with `m` subspaces.
    ///
    /// Non-parametric OPQ: start from the identity rotation, then repeat
    /// (1) rotate data, (2) train/refresh PQ codebooks, (3) re-solve the
    /// rotation as the orthogonal Procrustes alignment between the data and
    /// its reconstruction. Quantization error is non-increasing across
    /// rounds up to k-means restarts.
    pub fn train(data: &[f32], dim: usize, m: usize, opts: &OpqOptions) -> Opq {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "data must be n×dim"
        );
        let n = data.len() / dim;
        assert!(n > 0, "empty training set");

        let mut rotation = Matrix::identity(dim);
        let mut rotated = vec![0.0f32; data.len()];
        let mut pq = None;

        for round in 0..opts.rounds.max(1) {
            rotate_all(&rotation, data, dim, &mut rotated);
            let mut pq_opts = opts.pq.clone();
            pq_opts.kmeans.seed = pq_opts.kmeans.seed.wrapping_add(round as u64 * 131);
            let trained = ProductQuantizer::train(&rotated, dim, m, &pq_opts);

            if round + 1 < opts.rounds {
                // Solve R ← argmin_R Σ ‖R·x − decode(encode(R_old·x))‖², the
                // orthogonal Procrustes problem: R = U·Vᵀ of svd(Xᵀ·Y) where
                // X are the original rows, Y their reconstructions.
                let mut cross = Matrix::zeros(dim, dim);
                for (row, rot_row) in data.chunks_exact(dim).zip(rotated.chunks_exact(dim)) {
                    let rec = trained.decode(&trained.encode(rot_row));
                    for (i, &xi) in row.iter().enumerate() {
                        let xi = xi as f64;
                        if xi == 0.0 {
                            continue;
                        }
                        let cr = cross.row_mut(i);
                        for (c, &y) in cr.iter_mut().zip(&rec) {
                            *c += xi * y as f64;
                        }
                    }
                }
                let s = svd(&cross);
                // Minimizing Σ‖R·x − ŷ‖² over orthogonal R is maximizing
                // tr(R·M) with M = Σ x·ŷᵀ (accumulated above); the optimum is
                // R = V·Uᵀ for M = U·Σ·Vᵀ.
                rotation = s.v.matmul(&s.u.transpose());
            }
            pq = Some(trained);
        }
        rotate_all(&rotation, data, dim, &mut rotated);
        let pq = pq.expect("at least one round");
        Opq { rotation, pq }
    }

    /// The learned rotation.
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The product quantizer over rotated space.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Rotate a vector into codebook space.
    pub fn rotate(&self, x: &[f32]) -> Vec<f32> {
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        self.rotation
            .matvec(&xf)
            .into_iter()
            .map(|v| v as f32)
            .collect()
    }

    /// Encode one vector (rotate + PQ-encode).
    pub fn encode(&self, x: &[f32]) -> Vec<u8> {
        self.pq.encode(&self.rotate(x))
    }

    /// Reconstruction in *original* space: rotate back the PQ decode.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        let rec = self.pq.decode(code);
        let rf: Vec<f64> = rec.iter().map(|&v| v as f64).collect();
        self.rotation
            .matvec_t(&rf)
            .into_iter()
            .map(|v| v as f32)
            .collect()
    }

    /// Mean squared reconstruction error in original space.
    pub fn quantization_error(&self, data: &[f32]) -> f64 {
        let dim = self.pq.dim();
        let n = data.len() / dim;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0f64;
        for row in data.chunks_exact(dim) {
            let rec = self.decode(&self.encode(row));
            total += gqr_linalg::vecops::sq_dist_f32(row, &rec) as f64;
        }
        total / n as f64
    }

    /// Approximate model size in bytes (codebooks + rotation), for Table 2.
    pub fn model_bytes(&self) -> usize {
        let dim = self.pq.dim();
        let rot = dim * dim * std::mem::size_of::<f64>();
        let mut cb = 0;
        for s in 0..self.pq.n_subspaces() {
            cb += std::mem::size_of_val(self.pq.codebook(s));
        }
        rot + cb
    }

    /// Serialize rotation + codebooks for a binary snapshot (see
    /// `gqr-core::persist`).
    pub fn wire_write(&self, w: &mut gqr_linalg::wire::ByteWriter) {
        w.put_matrix(&self.rotation);
        self.pq.wire_write(w);
    }

    /// Decode a model written by [`Opq::wire_write`].
    pub fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<Opq, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let rotation = r.get_matrix()?;
        let pq = ProductQuantizer::wire_read(r)?;
        if rotation.rows() != rotation.cols() || rotation.rows() != pq.dim() {
            return Err(WireError::Malformed("OPQ rotation shape mismatch"));
        }
        Ok(Opq { rotation, pq })
    }
}

/// Rotate every row: `out_row = R · row` (accumulated in f64).
fn rotate_all(rotation: &Matrix, data: &[f32], dim: usize, out: &mut [f32]) {
    debug_assert_eq!(data.len(), out.len());
    let mut xf = vec![0.0f64; dim];
    for (row, out_row) in data.chunks_exact(dim).zip(out.chunks_exact_mut(dim)) {
        for (x, &v) in xf.iter_mut().zip(row) {
            *x = v as f64;
        }
        let y = rotation.matvec(&xf);
        for (o, v) in out_row.iter_mut().zip(y) {
            *o = v as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansOptions;

    fn opts(ks: usize, rounds: usize) -> OpqOptions {
        OpqOptions {
            rounds,
            pq: PqOptions {
                ks,
                kmeans: KMeansOptions {
                    seed: 21,
                    ..Default::default()
                },
            },
        }
    }

    /// Data correlated across the subspace split: dims (0,2) equal, (1,3)
    /// equal. Plain PQ on halves (0,1)/(2,3) wastes codewords; a rotation can
    /// decorrelate. OPQ must end with error no worse than round-0 PQ.
    fn correlated_data() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..300 {
            let a = ((i * 17) % 23) as f32 - 11.0;
            let b = ((i * 5) % 19) as f32 - 9.0;
            data.extend_from_slice(&[a, b, a + 0.01 * b, b - 0.01 * a]);
        }
        data
    }

    #[test]
    fn rotation_stays_orthogonal() {
        let data = correlated_data();
        let opq = Opq::train(&data, 4, 2, &opts(8, 4));
        assert!(opq.rotation().is_orthonormal(1e-6));
    }

    #[test]
    fn opq_error_not_worse_than_single_round() {
        let data = correlated_data();
        let single = Opq::train(&data, 4, 2, &opts(8, 1));
        let multi = Opq::train(&data, 4, 2, &opts(8, 6));
        assert!(
            multi.quantization_error(&data) <= single.quantization_error(&data) * 1.05,
            "multi {} vs single {}",
            multi.quantization_error(&data),
            single.quantization_error(&data)
        );
    }

    #[test]
    fn encode_decode_roundtrip_shape() {
        let data = correlated_data();
        let opq = Opq::train(&data, 4, 2, &opts(4, 2));
        let code = opq.encode(&data[..4]);
        assert_eq!(code.len(), 2);
        assert_eq!(opq.decode(&code).len(), 4);
    }

    #[test]
    fn rotate_preserves_norm() {
        let data = correlated_data();
        let opq = Opq::train(&data, 4, 2, &opts(4, 3));
        let x = [1.0f32, -2.0, 3.0, 0.5];
        let y = opq.rotate(&x);
        let nx: f32 = x.iter().map(|v| v * v).sum();
        let ny: f32 = y.iter().map(|v| v * v).sum();
        assert!((nx - ny).abs() < 1e-3);
    }

    #[test]
    fn model_bytes_positive() {
        let data = correlated_data();
        let opq = Opq::train(&data, 4, 2, &opts(4, 1));
        assert!(opq.model_bytes() > 0);
    }
}
