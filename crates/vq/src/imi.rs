//! The inverted multi-index (Babenko & Lempitsky, CVPR 2012) with the
//! multi-sequence cell traversal algorithm.
//!
//! Two codebooks `U`, `V` quantize the two halves of each vector; an item
//! lives in cell `(u, v)`. A query ranks all `K²` cells by
//! `d_U(q₁, u) + d_V(q₂, v)` and visits them in ascending order using a
//! min-heap that only ever holds `O(K)` frontier cells — the multi-sequence
//! algorithm. Combined with an OPQ rotation this is the `OPQ+IMI` comparator
//! of the paper's §6.5.

use crate::kmeans::{kmeans, KMeansOptions};
use gqr_metrics::{MetricsRegistry, Phase, PhaseSpans};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A built inverted multi-index over a dataset.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct InvertedMultiIndex {
    dim: usize,
    split: usize,
    k: usize,
    /// First-half codebook, row-major `k × split`.
    codebook_u: Vec<f32>,
    /// Second-half codebook, row-major `k × (dim - split)`.
    codebook_v: Vec<f32>,
    /// Item ids per cell, indexed `u * k + v`.
    cells: Vec<Vec<u32>>,
}

/// Options for [`InvertedMultiIndex::build`].
#[derive(Clone, Debug)]
pub struct ImiOptions {
    /// Codebook size per half (`K`); the index has `K²` cells.
    pub k: usize,
    /// k-means settings for the two codebooks.
    pub kmeans: KMeansOptions,
}

impl Default for ImiOptions {
    fn default() -> Self {
        ImiOptions {
            k: 64,
            kmeans: KMeansOptions::default(),
        }
    }
}

impl InvertedMultiIndex {
    /// Build the index: train the two half-space codebooks and assign every
    /// item to its cell.
    pub fn build(data: &[f32], dim: usize, opts: &ImiOptions) -> InvertedMultiIndex {
        assert!(dim >= 2, "IMI needs at least two dimensions");
        assert!(data.len().is_multiple_of(dim), "data must be n×dim");
        let n = data.len() / dim;
        assert!(opts.k > 0 && opts.k <= n, "need 0 < k <= n");
        let split = dim / 2;

        let mut first = Vec::with_capacity(n * split);
        let mut second = Vec::with_capacity(n * (dim - split));
        for row in data.chunks_exact(dim) {
            first.extend_from_slice(&row[..split]);
            second.extend_from_slice(&row[split..]);
        }
        let mut ko = opts.kmeans.clone();
        let km_u = kmeans(&first, split, opts.k, &ko);
        ko.seed = ko.seed.wrapping_add(1);
        let km_v = kmeans(&second, dim - split, opts.k, &ko);

        let mut cells = vec![Vec::new(); opts.k * opts.k];
        for (i, (&u, &v)) in km_u.assignments.iter().zip(&km_v.assignments).enumerate() {
            cells[u as usize * opts.k + v as usize].push(i as u32);
        }
        InvertedMultiIndex {
            dim,
            split,
            k: opts.k,
            codebook_u: km_u.centroids,
            codebook_v: km_v.centroids,
            cells,
        }
    }

    /// Codebook size per half.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Items in cell `(u, v)`.
    pub fn cell(&self, u: usize, v: usize) -> &[u32] {
        &self.cells[u * self.k + v]
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    /// Serialize codebooks + cell lists for a binary snapshot (see
    /// `gqr-core::persist`). Cell id order is preserved, so a reloaded
    /// index yields candidates in the exact order of the original.
    pub fn wire_write(&self, w: &mut gqr_linalg::wire::ByteWriter) {
        w.put_usize(self.dim);
        w.put_usize(self.split);
        w.put_usize(self.k);
        w.put_f32_slice(&self.codebook_u);
        w.put_f32_slice(&self.codebook_v);
        for cell in &self.cells {
            w.put_u32_slice(cell);
        }
    }

    /// Decode an index written by [`InvertedMultiIndex::wire_write`].
    pub fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<InvertedMultiIndex, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let dim = r.get_usize()?;
        let split = r.get_usize()?;
        let k = r.get_usize()?;
        if k == 0 || split == 0 || split >= dim {
            return Err(WireError::Malformed("IMI shape out of range"));
        }
        let codebook_u = r.get_f32_vec()?;
        let codebook_v = r.get_f32_vec()?;
        if codebook_u.len() != k * split || codebook_v.len() != k * (dim - split) {
            return Err(WireError::Malformed("IMI codebook size mismatch"));
        }
        let n_cells = k
            .checked_mul(k)
            .ok_or(WireError::Malformed("IMI cell count overflows"))?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            cells.push(r.get_u32_vec()?);
        }
        Ok(InvertedMultiIndex {
            dim,
            split,
            k,
            codebook_u,
            codebook_v,
            cells,
        })
    }

    /// Start the multi-sequence traversal for a query: returns an iterator
    /// yielding cells `(u, v, score)` in non-decreasing score order, where
    /// `score = ‖q₁ − U_u‖² + ‖q₂ − V_v‖²`.
    pub fn traverse<'a>(&'a self, query: &[f32]) -> MultiSequence<'a> {
        assert_eq!(query.len(), self.dim);
        let du = sorted_half_distances(&self.codebook_u, self.split, &query[..self.split]);
        let dv = sorted_half_distances(
            &self.codebook_v,
            self.dim - self.split,
            &query[self.split..],
        );
        let mut heap = BinaryHeap::new();
        let mut pushed = vec![false; self.k * self.k];
        heap.push(CellEntry {
            score: du[0].1 + dv[0].1,
            i: 0,
            j: 0,
        });
        pushed[0] = true;
        MultiSequence {
            index: self,
            du,
            dv,
            heap,
            pushed,
        }
    }

    /// Collect candidate item ids by traversing cells until at least
    /// `n_candidates` items are gathered (or all cells are visited).
    pub fn collect_candidates(&self, query: &[f32], n_candidates: usize) -> Vec<u32> {
        self.collect_candidates_metered(query, n_candidates, &MetricsRegistry::disabled())
    }

    /// [`InvertedMultiIndex::collect_candidates`] with query-path
    /// observability: with an enabled registry, phase spans are recorded
    /// under the `gqr_imi_*` family with `strategy="IMI"` — `hash_query` is
    /// the per-half codebook distance tables, `probe_generate` the
    /// multi-sequence heap traversal, `bucket_lookup` the cell gathers. The
    /// `evaluate`/`rerank` phases belong to the caller (this index only
    /// generates candidates) and record nothing here.
    pub fn collect_candidates_metered(
        &self,
        query: &[f32],
        n_candidates: usize,
        metrics: &MetricsRegistry,
    ) -> Vec<u32> {
        let start = Instant::now();
        let mut spans = PhaseSpans::new(metrics);
        let t = spans.begin();
        let mut traversal = self.traverse(query);
        spans.end(Phase::HashQuery, t);
        let mut out = Vec::with_capacity(n_candidates.min(self.cells.iter().map(Vec::len).sum()));
        loop {
            let t = spans.begin();
            let next = traversal.next();
            spans.end(Phase::ProbeGenerate, t);
            let Some((u, v, _)) = next else { break };
            let t = spans.begin();
            out.extend_from_slice(self.cell(u, v));
            spans.end(Phase::BucketLookup, t);
            if out.len() >= n_candidates {
                break;
            }
        }
        spans.flush(metrics, "gqr_imi", "IMI", start.elapsed());
        out
    }
}

/// Per-half sorted `(centroid_index, sq_distance)` list.
fn sorted_half_distances(codebook: &[f32], sub_dim: usize, q: &[f32]) -> Vec<(u32, f32)> {
    // The codebook is a contiguous k×sub_dim tile: score it in one blocked
    // batch-kernel call, then attach centroid indices for the sort.
    let k = codebook.len() / sub_dim;
    let mut dists = vec![0.0f32; k];
    gqr_linalg::kernels::sq_dist_batch(q, &codebook[..k * sub_dim], &mut dists);
    let mut d: Vec<(u32, f32)> = dists
        .into_iter()
        .enumerate()
        .map(|(c, dist)| (c as u32, dist))
        .collect();
    d.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    d
}

/// Heap entry over *rank* pairs `(i, j)` into the two sorted distance lists.
#[derive(Copy, Clone, PartialEq)]
struct CellEntry {
    score: f32,
    i: usize,
    j: usize,
}

impl Eq for CellEntry {}

impl Ord for CellEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need min-score first.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| (other.i, other.j).cmp(&(self.i, self.j)))
    }
}

impl PartialOrd for CellEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator over cells in non-decreasing score order (the multi-sequence
/// algorithm). Yields `(u, v, score)` with `u`/`v` the *original* centroid
/// indices.
pub struct MultiSequence<'a> {
    index: &'a InvertedMultiIndex,
    du: Vec<(u32, f32)>,
    dv: Vec<(u32, f32)>,
    heap: BinaryHeap<CellEntry>,
    pushed: Vec<bool>,
}

impl Iterator for MultiSequence<'_> {
    type Item = (usize, usize, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let k = self.index.k;
        let top = self.heap.pop()?;
        // Push the two successors in rank space; `pushed` prevents the
        // classic double-insertion of (i+1, j+1).
        for (ni, nj) in [(top.i + 1, top.j), (top.i, top.j + 1)] {
            if ni < k && nj < k && !self.pushed[ni * k + nj] {
                self.pushed[ni * k + nj] = true;
                self.heap.push(CellEntry {
                    score: self.du[ni].1 + self.dv[nj].1,
                    i: ni,
                    j: nj,
                });
            }
        }
        let u = self.du[top.i].0 as usize;
        let v = self.dv[top.j].0 as usize;
        Some((u, v, top.score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_toy(k: usize) -> (Vec<f32>, InvertedMultiIndex) {
        // 4-D points on a k×k grid in (dims 0-1) × (dims 2-3) corner space.
        let mut data = Vec::new();
        for i in 0..k {
            for j in 0..k {
                for _ in 0..3 {
                    data.extend_from_slice(&[i as f32 * 10.0, 0.0, j as f32 * 10.0, 0.0]);
                }
            }
        }
        let imi = InvertedMultiIndex::build(
            &data,
            4,
            &ImiOptions {
                k,
                kmeans: KMeansOptions {
                    seed: 17,
                    ..Default::default()
                },
            },
        );
        (data, imi)
    }

    #[test]
    fn traversal_scores_nondecreasing_and_complete() {
        let (_, imi) = build_toy(4);
        let q = [5.0f32, 0.0, 25.0, 0.0];
        let mut last = f32::NEG_INFINITY;
        let mut count = 0;
        let mut seen = std::collections::HashSet::new();
        for (u, v, score) in imi.traverse(&q) {
            assert!(score >= last - 1e-6, "scores must be non-decreasing");
            last = score;
            assert!(seen.insert((u, v)), "cell visited twice: ({u},{v})");
            count += 1;
        }
        assert_eq!(count, 16, "all K² cells visited exactly once");
    }

    #[test]
    fn nearest_cell_first() {
        let (_, imi) = build_toy(3);
        // Query exactly at grid point (1,2): its cell must come first.
        let q = [10.0f32, 0.0, 20.0, 0.0];
        let (u, v, score) = imi.traverse(&q).next().unwrap();
        assert!(score < 1e-6);
        let ids = imi.cell(u, v);
        assert_eq!(ids.len(), 3, "three duplicates of the grid point");
    }

    #[test]
    fn collect_candidates_gathers_enough() {
        let (data, imi) = build_toy(4);
        let n = data.len() / 4;
        let q = [0.0f32, 0.0, 0.0, 0.0];
        let c = imi.collect_candidates(&q, 7);
        assert!(c.len() >= 7);
        let all = imi.collect_candidates(&q, usize::MAX);
        assert_eq!(all.len(), n, "traversing everything returns every item");
    }

    #[test]
    fn metered_candidates_match_plain_and_record_spans() {
        let (_, imi) = build_toy(4);
        let q = [5.0f32, 0.0, 15.0, 0.0];
        let m = MetricsRegistry::enabled();
        let metered = imi.collect_candidates_metered(&q, 9, &m);
        let plain = imi.collect_candidates(&q, 9);
        assert_eq!(metered, plain, "metering must not change candidates");
        assert_eq!(
            m.counter_value("gqr_imi_queries_total{strategy=\"IMI\"}"),
            Some(1)
        );
        let total = m.histogram("gqr_imi_total_ns{strategy=\"IMI\"}").unwrap();
        assert_eq!(total.count(), 1);
    }

    #[test]
    fn every_item_in_exactly_one_cell() {
        let (data, imi) = build_toy(4);
        let n = data.len() / 4;
        let mut seen = vec![false; n];
        for u in 0..imi.k() {
            for v in 0..imi.k() {
                for &id in imi.cell(u, v) {
                    assert!(!seen[id as usize], "item {id} in two cells");
                    seen[id as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn occupied_cells_counted() {
        let (_, imi) = build_toy(4);
        assert!(imi.occupied_cells() > 0);
        assert!(imi.occupied_cells() <= 16);
    }
}
