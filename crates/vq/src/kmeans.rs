//! Lloyd's k-means with k-means++ seeding.

use gqr_linalg::vecops::sq_dist_f32;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Salt so a zero seed doesn't collide with other zero-seeded RNGs in the
/// workspace ("kmeans" in ASCII).
const KMEANS_SEED_SALT: u64 = 0x6b6d_6561_6e73;

/// Tuning knobs for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansOptions {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when relative inertia improvement falls below this.
    pub tol: f64,
    /// RNG seed (k-means++ and empty-cluster reseeding).
    pub seed: u64,
    /// Worker threads for the assignment step (`0` = all cores).
    pub threads: usize,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        KMeansOptions {
            max_iters: 25,
            tol: 1e-4,
            seed: 0,
            threads: 1,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KMeans {
    /// Centroids, row-major `k × dim`.
    pub centroids: Vec<f32>,
    /// Per-item nearest-centroid index.
    pub assignments: Vec<u32>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Dimensionality.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

impl KMeans {
    /// Borrow centroid `c`.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the centroid nearest to `x`.
    pub fn nearest(&self, x: &[f32]) -> u32 {
        nearest_centroid(&self.centroids, self.dim, x).0
    }
}

/// Index and squared distance of the centroid (row-major `k×dim`) nearest to
/// `x`.
pub fn nearest_centroid(centroids: &[f32], dim: usize, x: &[f32]) -> (u32, f32) {
    debug_assert_eq!(x.len(), dim);
    let mut best = (0u32, f32::INFINITY);
    for (c, cent) in centroids.chunks_exact(dim).enumerate() {
        let d = sq_dist_f32(x, cent);
        if d < best.1 {
            best = (c as u32, d);
        }
    }
    best
}

/// Run k-means on `n` rows of dimension `dim` stored contiguously.
///
/// k-means++ seeding, Lloyd updates, empty clusters reseeded to the point
/// farthest from its centroid. Deterministic for a fixed seed regardless of
/// thread count. Panics if `k == 0` or `k > n`.
pub fn kmeans(data: &[f32], dim: usize, k: usize, opts: &KMeansOptions) -> KMeans {
    assert!(
        dim > 0 && data.len().is_multiple_of(dim),
        "data must be n×dim"
    );
    let n = data.len() / dim;
    assert!(k > 0 && k <= n, "need 0 < k <= n (k={k}, n={n})");

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed.wrapping_add(KMEANS_SEED_SALT));
    let mut centroids = plus_plus_init(data, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..opts.max_iters.max(1) {
        iterations = iter + 1;
        let new_inertia = assign(data, dim, &centroids, &mut assignments, opts.threads);

        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (row, &a) in data.chunks_exact(dim).zip(&assignments) {
            counts[a as usize] += 1;
            let s = &mut sums[a as usize * dim..(a as usize + 1) * dim];
            for (acc, &x) in s.iter_mut().zip(row) {
                *acc += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point currently farthest
                // from its assigned centroid.
                let far = farthest_point(data, dim, &centroids, &assignments);
                centroids[c * dim..(c + 1) * dim]
                    .copy_from_slice(&data[far * dim..(far + 1) * dim]);
            } else {
                let inv = 1.0 / counts[c] as f64;
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] * inv) as f32;
                }
            }
        }

        let improved =
            inertia.is_infinite() || (inertia - new_inertia) > opts.tol * inertia.abs().max(1e-12);
        inertia = new_inertia;
        if !improved {
            break;
        }
    }
    // Final assignment so assignments/inertia match the returned centroids.
    let final_inertia = assign(data, dim, &centroids, &mut assignments, opts.threads);
    KMeans {
        centroids,
        assignments,
        inertia: final_inertia,
        dim,
        k,
        iterations,
    }
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007).
fn plus_plus_init(data: &[f32], dim: usize, k: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let n = data.len() / dim;
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    let mut dists: Vec<f64> = data
        .chunks_exact(dim)
        .map(|row| sq_dist_f32(row, &centroids[..dim]) as f64)
        .collect();

    while centroids.len() < k * dim {
        let total: f64 = dists.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        let new_c: Vec<f32> = data[pick * dim..(pick + 1) * dim].to_vec();
        for (d, row) in dists.iter_mut().zip(data.chunks_exact(dim)) {
            let nd = sq_dist_f32(row, &new_c) as f64;
            if nd < *d {
                *d = nd;
            }
        }
        centroids.extend_from_slice(&new_c);
    }
    centroids
}

/// Assignment step; returns inertia. Parallel over disjoint item chunks, so
/// the result is identical to the serial pass.
fn assign(
    data: &[f32],
    dim: usize,
    centroids: &[f32],
    assignments: &mut [u32],
    threads: usize,
) -> f64 {
    let n = assignments.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || n < 4096 {
        let mut inertia = 0.0f64;
        for (row, a) in data.chunks_exact(dim).zip(assignments.iter_mut()) {
            let (c, d) = nearest_centroid(centroids, dim, row);
            *a = c;
            inertia += d as f64;
        }
        return inertia;
    }
    let chunk = n.div_ceil(threads);
    let mut partials = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, a_chunk) in assignments.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            let rows = &data[start * dim..(start + a_chunk.len()) * dim];
            handles.push(scope.spawn(move |_| {
                let mut inertia = 0.0f64;
                for (row, a) in rows.chunks_exact(dim).zip(a_chunk.iter_mut()) {
                    let (c, d) = nearest_centroid(centroids, dim, row);
                    *a = c;
                    inertia += d as f64;
                }
                inertia
            }));
        }
        for h in handles {
            partials.push(h.join().expect("kmeans worker panicked"));
        }
    })
    .expect("kmeans scope failed");
    partials.into_iter().sum()
}

/// Item farthest from its assigned centroid (for empty-cluster reseeding).
fn farthest_point(data: &[f32], dim: usize, centroids: &[f32], assignments: &[u32]) -> usize {
    let mut best = (0usize, -1.0f32);
    for (i, (row, &a)) in data.chunks_exact(dim).zip(assignments).enumerate() {
        let d = sq_dist_f32(row, &centroids[a as usize * dim..(a as usize + 1) * dim]);
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..50 {
            let j = i as f32 * 0.01;
            data.extend_from_slice(&[j, -j]); // blob near origin
            data.extend_from_slice(&[10.0 + j, 10.0 - j]); // blob near (10,10)
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let km = kmeans(
            &data,
            2,
            2,
            &KMeansOptions {
                seed: 3,
                ..Default::default()
            },
        );
        let a0 = km.assignments[0];
        let a1 = km.assignments[1];
        assert_ne!(a0, a1);
        for i in 0..100 {
            assert_eq!(km.assignments[i], if i % 2 == 0 { a0 } else { a1 });
        }
        assert!(km.inertia < 10.0, "tight blobs: inertia {}", km.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![0.0f32, 0.0, 5.0, 5.0, -3.0, 1.0];
        let km = kmeans(
            &data,
            2,
            3,
            &KMeansOptions {
                seed: 1,
                ..Default::default()
            },
        );
        assert!(km.inertia < 1e-10);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = two_blobs();
        let a = kmeans(
            &data,
            2,
            4,
            &KMeansOptions {
                seed: 9,
                ..Default::default()
            },
        );
        let b = kmeans(
            &data,
            2,
            4,
            &KMeansOptions {
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn parallel_assignment_matches_serial() {
        let data: Vec<f32> = (0..10_000).map(|i| ((i * 31 % 97) as f32) / 7.0).collect();
        let serial = kmeans(
            &data,
            4,
            8,
            &KMeansOptions {
                seed: 5,
                threads: 1,
                ..Default::default()
            },
        );
        let par = kmeans(
            &data,
            4,
            8,
            &KMeansOptions {
                seed: 5,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.assignments, par.assignments);
        assert!((serial.inertia - par.inertia).abs() < 1e-6 * serial.inertia.max(1.0));
    }

    #[test]
    fn nearest_matches_assignment() {
        let data = two_blobs();
        let km = kmeans(
            &data,
            2,
            2,
            &KMeansOptions {
                seed: 2,
                ..Default::default()
            },
        );
        for (i, row) in data.chunks_exact(2).enumerate() {
            assert_eq!(km.nearest(row), km.assignments[i]);
        }
    }

    #[test]
    fn inertia_never_increases_across_longer_runs() {
        let data = two_blobs();
        let short = kmeans(
            &data,
            2,
            4,
            &KMeansOptions {
                seed: 7,
                max_iters: 1,
                ..Default::default()
            },
        );
        let long = kmeans(
            &data,
            2,
            4,
            &KMeansOptions {
                seed: 7,
                max_iters: 20,
                ..Default::default()
            },
        );
        assert!(long.inertia <= short.inertia + 1e-9);
    }

    #[test]
    #[should_panic(expected = "need 0 < k <= n")]
    fn k_larger_than_n_panics() {
        let data = vec![0.0f32, 0.0];
        let _ = kmeans(&data, 2, 5, &KMeansOptions::default());
    }
}
