//! Product quantization (Jégou et al., TPAMI 2011).

use crate::kmeans::{kmeans, nearest_centroid, KMeansOptions};

/// A trained product quantizer: `m` subspaces, each with its own `ks`-entry
/// codebook. An item is encoded as `m` centroid indices.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    /// Number of subspaces.
    m: usize,
    /// Codebook size per subspace.
    ks: usize,
    /// Subspace boundaries: subspace `s` covers dims `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
    /// Per-subspace codebooks, each row-major `ks × sub_dim(s)`.
    codebooks: Vec<Vec<f32>>,
}

/// Training options for [`ProductQuantizer::train`].
#[derive(Clone, Debug)]
pub struct PqOptions {
    /// Codebook size per subspace (≤ 256 so codes fit in a byte).
    pub ks: usize,
    /// k-means settings used per subspace.
    pub kmeans: KMeansOptions,
}

impl Default for PqOptions {
    fn default() -> Self {
        PqOptions {
            ks: 256,
            kmeans: KMeansOptions::default(),
        }
    }
}

impl ProductQuantizer {
    /// Train a product quantizer with `m` subspaces on row-major data.
    ///
    /// Dimensions are split as evenly as possible (first `dim % m` subspaces
    /// get one extra). Panics if `m == 0`, `m > dim`, or `ks > n` or
    /// `ks > 256`.
    pub fn train(data: &[f32], dim: usize, m: usize, opts: &PqOptions) -> ProductQuantizer {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "data must be n×dim"
        );
        let n = data.len() / dim;
        assert!(m > 0 && m <= dim, "need 0 < m <= dim");
        assert!(
            opts.ks > 0 && opts.ks <= 256,
            "codebook size must be in 1..=256"
        );
        assert!(opts.ks <= n, "need at least ks training rows");

        let bounds = split_bounds(dim, m);
        let mut codebooks = Vec::with_capacity(m);
        let mut sub_buf = Vec::new();
        for s in 0..m {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let sub_dim = hi - lo;
            sub_buf.clear();
            sub_buf.reserve(n * sub_dim);
            for row in data.chunks_exact(dim) {
                sub_buf.extend_from_slice(&row[lo..hi]);
            }
            let mut km_opts = opts.kmeans.clone();
            km_opts.seed = km_opts.seed.wrapping_add(s as u64);
            let km = kmeans(&sub_buf, sub_dim, opts.ks, &km_opts);
            codebooks.push(km.centroids);
        }
        ProductQuantizer {
            dim,
            m,
            ks: opts.ks,
            bounds,
            codebooks,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces.
    pub fn n_subspaces(&self) -> usize {
        self.m
    }

    /// Codebook size per subspace.
    pub fn ks(&self) -> usize {
        self.ks
    }

    /// Sub-dimension range of subspace `s`.
    pub fn subspace_range(&self, s: usize) -> (usize, usize) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Borrow the codebook of subspace `s` (row-major `ks × sub_dim`).
    pub fn codebook(&self, s: usize) -> &[f32] {
        &self.codebooks[s]
    }

    /// Encode one vector into `m` centroid indices.
    pub fn encode(&self, x: &[f32]) -> Vec<u8> {
        assert_eq!(x.len(), self.dim);
        (0..self.m)
            .map(|s| {
                let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
                nearest_centroid(&self.codebooks[s], hi - lo, &x[lo..hi]).0 as u8
            })
            .collect()
    }

    /// Decode a code back to its reconstruction.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m);
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in code.iter().enumerate() {
            let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
            let sub_dim = hi - lo;
            let cent = &self.codebooks[s][c as usize * sub_dim..(c as usize + 1) * sub_dim];
            out.extend_from_slice(cent);
        }
        out
    }

    /// Asymmetric distance lookup table for a query: `table[s][c]` is the
    /// squared distance between the query's subvector `s` and centroid `c`.
    /// `adc(code) = Σ_s table[s][code[s]]` approximates `‖q − decode(code)‖²`.
    pub fn distance_table(&self, q: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(q.len(), self.dim);
        (0..self.m)
            .map(|s| {
                let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
                let sub_dim = hi - lo;
                let qs = &q[lo..hi];
                // The codebook is already a contiguous k×sub_dim tile, so the
                // blocked batch kernel scans it with no gather step.
                let k = self.codebooks[s].len() / sub_dim;
                let mut dists = vec![0.0f32; k];
                gqr_linalg::kernels::sq_dist_batch(qs, &self.codebooks[s], &mut dists);
                dists
            })
            .collect()
    }

    /// Asymmetric distance of one code given a precomputed table.
    #[inline]
    pub fn adc(table: &[Vec<f32>], code: &[u8]) -> f32 {
        code.iter().zip(table).map(|(&c, t)| t[c as usize]).sum()
    }

    /// Mean squared reconstruction error over a dataset (training metric).
    pub fn quantization_error(&self, data: &[f32]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0f64;
        for row in data.chunks_exact(self.dim) {
            let rec = self.decode(&self.encode(row));
            total += gqr_linalg::vecops::sq_dist_f32(row, &rec) as f64;
        }
        total / n as f64
    }

    /// Serialize the codebooks for a binary snapshot (see
    /// `gqr-core::persist`).
    pub fn wire_write(&self, w: &mut gqr_linalg::wire::ByteWriter) {
        w.put_usize(self.dim);
        w.put_usize(self.m);
        w.put_usize(self.ks);
        w.put_usize(self.bounds.len());
        for &b in &self.bounds {
            w.put_usize(b);
        }
        for cb in &self.codebooks {
            w.put_f32_slice(cb);
        }
    }

    /// Decode a quantizer written by [`ProductQuantizer::wire_write`].
    pub fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<ProductQuantizer, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let dim = r.get_usize()?;
        let m = r.get_usize()?;
        let ks = r.get_usize()?;
        if m == 0 || ks == 0 || ks > 256 {
            return Err(WireError::Malformed("PQ shape out of range"));
        }
        let n_bounds = r.get_usize()?;
        if n_bounds != m + 1 {
            return Err(WireError::Malformed("PQ bounds length mismatch"));
        }
        let mut bounds = Vec::with_capacity(n_bounds);
        for _ in 0..n_bounds {
            bounds.push(r.get_usize()?);
        }
        if bounds[0] != 0 || bounds[m] != dim || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WireError::Malformed("PQ bounds are not a partition"));
        }
        let mut codebooks = Vec::with_capacity(m);
        for s in 0..m {
            let cb = r.get_f32_vec()?;
            if cb.len() != ks * (bounds[s + 1] - bounds[s]) {
                return Err(WireError::Malformed("PQ codebook size mismatch"));
            }
            codebooks.push(cb);
        }
        Ok(ProductQuantizer {
            dim,
            m,
            ks,
            bounds,
            codebooks,
        })
    }
}

/// Split `dim` dimensions into `m` contiguous, nearly-equal ranges.
fn split_bounds(dim: usize, m: usize) -> Vec<usize> {
    let base = dim / m;
    let extra = dim % m;
    let mut bounds = Vec::with_capacity(m + 1);
    let mut acc = 0;
    bounds.push(0);
    for s in 0..m {
        acc += base + usize::from(s < extra);
        bounds.push(acc);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> Vec<f32> {
        // 4-D data where dims (0,1) and (2,3) each take one of 4 corners.
        let corners = [[0.0f32, 0.0], [0.0, 8.0], [8.0, 0.0], [8.0, 8.0]];
        let mut data = Vec::new();
        for i in 0..64 {
            let a = corners[i % 4];
            let b = corners[(i / 4) % 4];
            data.extend_from_slice(&[a[0], a[1], b[0], b[1]]);
        }
        data
    }

    fn pq_opts(ks: usize) -> PqOptions {
        PqOptions {
            ks,
            kmeans: KMeansOptions {
                seed: 11,
                ..Default::default()
            },
        }
    }

    #[test]
    fn split_bounds_even_and_uneven() {
        assert_eq!(split_bounds(8, 2), vec![0, 4, 8]);
        assert_eq!(split_bounds(7, 3), vec![0, 3, 5, 7]);
    }

    #[test]
    fn perfect_reconstruction_on_grid() {
        let data = grid_data();
        let pq = ProductQuantizer::train(&data, 4, 2, &pq_opts(4));
        // 4 codewords per half exactly cover the 4 corners.
        assert!(pq.quantization_error(&data) < 1e-6);
        for row in data.chunks_exact(4) {
            let rec = pq.decode(&pq.encode(row));
            assert!(gqr_linalg::vecops::sq_dist_f32(row, &rec) < 1e-6);
        }
    }

    #[test]
    fn adc_matches_exact_distance_to_reconstruction() {
        let data = grid_data();
        let pq = ProductQuantizer::train(&data, 4, 2, &pq_opts(4));
        let q = [1.0f32, 2.0, 3.0, 4.0];
        let table = pq.distance_table(&q);
        for row in data.chunks_exact(4) {
            let code = pq.encode(row);
            let rec = pq.decode(&code);
            let exact = gqr_linalg::vecops::sq_dist_f32(&q, &rec);
            let adc = ProductQuantizer::adc(&table, &code);
            assert!((exact - adc).abs() < 1e-4, "{exact} vs {adc}");
        }
    }

    #[test]
    fn more_codewords_reduce_error() {
        // Noisy data: bigger codebooks must not increase quantization error.
        let mut data = Vec::new();
        for i in 0..400 {
            data.push(((i * 13) % 101) as f32 / 10.0);
            data.push(((i * 7) % 89) as f32 / 10.0);
        }
        let small = ProductQuantizer::train(&data, 2, 1, &pq_opts(4));
        let large = ProductQuantizer::train(&data, 2, 1, &pq_opts(32));
        assert!(large.quantization_error(&data) <= small.quantization_error(&data));
    }

    #[test]
    fn encode_length_and_range() {
        let data = grid_data();
        let pq = ProductQuantizer::train(&data, 4, 2, &pq_opts(3));
        let code = pq.encode(&data[..4]);
        assert_eq!(code.len(), 2);
        assert!(code.iter().all(|&c| (c as usize) < 3));
    }
}
