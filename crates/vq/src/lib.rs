//! Vector-quantization comparators for the `gqr` reproduction.
//!
//! §6.5 of the paper compares PCAH/ITQ + GQR against **OPQ + IMI**, the
//! state-of-the-art vector-quantization pipeline of its day. This crate
//! implements that pipeline from scratch:
//!
//! * [`mod@kmeans`] — Lloyd's algorithm with k-means++ seeding and empty-cluster
//!   reseeding (also reused by K-means hashing in `gqr-l2h`).
//! * [`pq`] — product quantization: per-subspace codebooks + asymmetric
//!   distance computation.
//! * [`opq`] — optimized product quantization (non-parametric): alternating
//!   rotation/codebook optimization via orthogonal Procrustes.
//! * [`imi`] — the inverted multi-index with the multi-sequence algorithm
//!   that visits cells in ascending lower-bound distance.
//!
//! # Example
//!
//! ```
//! use gqr_vq::kmeans::{kmeans, KMeansOptions};
//!
//! let data = vec![0.0f32, 0.0, 0.1, 0.0, 10.0, 10.0, 10.1, 10.0];
//! let km = kmeans(&data, 2, 2, &KMeansOptions { seed: 1, ..Default::default() });
//! assert_eq!(km.centroids.len(), 4); // 2 centroids × dim 2
//! ```

#![warn(missing_docs)]
pub mod imi;
pub mod kmeans;
pub mod opq;
pub mod pq;

pub use imi::InvertedMultiIndex;
pub use kmeans::{kmeans, KMeans, KMeansOptions};
pub use opq::Opq;
pub use pq::ProductQuantizer;
