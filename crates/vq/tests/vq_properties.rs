//! Property-based tests of the vector-quantization stack.

use gqr_vq::imi::{ImiOptions, InvertedMultiIndex};
use gqr_vq::kmeans::{kmeans, KMeansOptions};
use gqr_vq::pq::{PqOptions, ProductQuantizer};
use proptest::prelude::*;

/// Random dataset: n rows × dim, values in [-8, 8].
fn dataset() -> impl Strategy<Value = (usize, Vec<f32>)> {
    (2usize..5, 24usize..64)
        .prop_flat_map(|(dim, n)| (Just(dim), prop::collection::vec(-8.0f32..8.0, dim * n)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    #[test]
    fn kmeans_assignments_are_nearest((dim, data) in dataset()) {
        let k = 4;
        let km = kmeans(&data, dim, k, &KMeansOptions { seed: 1, ..Default::default() });
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let assigned = km.assignments[i];
            let d_assigned = gqr_linalg::vecops::sq_dist_f32(row, km.centroid(assigned as usize));
            for c in 0..k {
                let d = gqr_linalg::vecops::sq_dist_f32(row, km.centroid(c));
                prop_assert!(d_assigned <= d + 1e-4, "item {i} not assigned to nearest centroid");
            }
        }
    }

    #[test]
    fn kmeans_inertia_matches_assignments((dim, data) in dataset()) {
        let km = kmeans(&data, dim, 3, &KMeansOptions { seed: 2, ..Default::default() });
        let manual: f64 = data
            .chunks_exact(dim)
            .zip(&km.assignments)
            .map(|(row, &a)| gqr_linalg::vecops::sq_dist_f32(row, km.centroid(a as usize)) as f64)
            .sum();
        prop_assert!((manual - km.inertia).abs() < 1e-4 * manual.max(1.0));
    }

    #[test]
    fn pq_adc_equals_distance_to_reconstruction((dim, data) in dataset()) {
        prop_assume!(dim >= 2);
        let pq = ProductQuantizer::train(
            &data,
            dim,
            2,
            &PqOptions { ks: 4, kmeans: KMeansOptions { seed: 3, ..Default::default() } },
        );
        let q = &data[..dim];
        let table = pq.distance_table(q);
        for row in data.chunks_exact(dim).take(10) {
            let code = pq.encode(row);
            let rec = pq.decode(&code);
            let exact = gqr_linalg::vecops::sq_dist_f32(q, &rec);
            let adc = ProductQuantizer::adc(&table, &code);
            prop_assert!((exact - adc).abs() < 1e-2 * exact.max(1.0) + 1e-3);
        }
    }

    #[test]
    fn pq_reconstruction_error_is_bounded_by_data_spread((dim, data) in dataset()) {
        prop_assume!(dim >= 2);
        let pq = ProductQuantizer::train(
            &data,
            dim,
            2,
            &PqOptions { ks: 8.min(data.len() / dim), kmeans: KMeansOptions { seed: 4, ..Default::default() } },
        );
        // Quantizing to the nearest of ≥ 8 codewords can never be worse than
        // the spread around the global mean (k-means with k=1).
        let n = data.len() / dim;
        let mut mean = vec![0.0f32; dim];
        for row in data.chunks_exact(dim) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x / n as f32;
            }
        }
        let spread: f64 = data
            .chunks_exact(dim)
            .map(|row| gqr_linalg::vecops::sq_dist_f32(row, &mean) as f64)
            .sum::<f64>()
            / n as f64;
        prop_assert!(pq.quantization_error(&data) <= spread + 1e-6);
    }

    #[test]
    fn imi_scores_never_decrease_and_cover_all_cells((dim, data) in dataset()) {
        prop_assume!(dim >= 2);
        let k = 3;
        let imi = InvertedMultiIndex::build(
            &data,
            dim,
            &ImiOptions { k, kmeans: KMeansOptions { seed: 5, ..Default::default() } },
        );
        let q = &data[..dim];
        let mut last = f32::NEG_INFINITY;
        let mut count = 0;
        for (_, _, score) in imi.traverse(q) {
            prop_assert!(score >= last - 1e-5);
            last = score;
            count += 1;
        }
        prop_assert_eq!(count, k * k);
    }

    #[test]
    fn imi_first_cell_is_nearest_cell((dim, data) in dataset()) {
        prop_assume!(dim >= 2);
        let k = 3;
        let imi = InvertedMultiIndex::build(
            &data,
            dim,
            &ImiOptions { k, kmeans: KMeansOptions { seed: 6, ..Default::default() } },
        );
        let q = &data[..dim];
        let mut cells: Vec<(usize, usize, f32)> = imi.traverse(q).collect();
        let first = cells.remove(0);
        for (_, _, score) in cells {
            prop_assert!(first.2 <= score + 1e-5);
        }
    }
}
