//! Sign random projections — the data-independent LSH baseline.

use crate::{check_training_input, HashModel, LinearHasher, QueryEncoding, TrainError};
use gqr_linalg::qr::gaussian;
use gqr_linalg::vecops::mean_rows;
use gqr_linalg::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sign-random-projection hashing: `m` iid Gaussian hyperplanes through the
/// data mean.
///
/// Unlike the learned models this ignores the data distribution (beyond
/// mean-centering, which keeps buckets balanced); it is the baseline L2H is
/// compared against in the paper's introduction.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Lsh {
    hasher: LinearHasher,
}

impl Lsh {
    /// Draw `m` Gaussian hyperplanes seeded by `seed`, centered on the mean
    /// of `data` (pass an empty slice to skip centering).
    pub fn train(data: &[f32], dim: usize, m: usize, seed: u64) -> Result<Lsh, TrainError> {
        if !data.is_empty() {
            check_training_input(data, dim, m, crate::MAX_CODE_LENGTH, 1)?;
        } else if m == 0 || m > crate::MAX_CODE_LENGTH {
            return Err(TrainError::BadCodeLength {
                requested: m,
                max: crate::MAX_CODE_LENGTH,
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x15_4a5d);
        let mut w = Matrix::zeros(m, dim);
        for r in 0..m {
            for c in 0..dim {
                w[(r, c)] = gaussian(&mut rng);
            }
        }
        let mean = if data.is_empty() {
            vec![0.0; dim]
        } else {
            mean_rows(data, dim)
        };
        let bias: Vec<f64> = (0..m)
            .map(|r| {
                -w.row(r)
                    .iter()
                    .zip(&mean)
                    .map(|(wi, mi)| wi * mi)
                    .sum::<f64>()
            })
            .collect();
        Ok(Lsh {
            hasher: LinearHasher::new(w, bias),
        })
    }

    /// The underlying linear hasher.
    pub fn hasher(&self) -> &LinearHasher {
        &self.hasher
    }
}

impl HashModel for Lsh {
    fn dim(&self) -> usize {
        self.hasher.dim()
    }

    fn code_length(&self) -> usize {
        self.hasher.code_length()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        self.hasher.encode(x)
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        self.hasher.encode_query(q)
    }

    fn encode_wide(&self, x: &[f32]) -> crate::CodeBlocks {
        self.hasher.encode_wide(x)
    }

    fn encode_query_wide(&self, q: &[f32]) -> crate::WideQueryEncoding {
        self.hasher.encode_query_wide(q)
    }

    fn spectral_norm(&self) -> Option<f64> {
        Some(self.hasher.spectral_norm())
    }

    fn name(&self) -> &'static str {
        "LSH"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        crate::persist::write_hasher(&mut w, &self.hasher);
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Lsh,
            bytes: w.into_bytes(),
        })
    }
}

impl Lsh {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<Lsh, gqr_linalg::wire::WireError> {
        Ok(Lsh {
            hasher: crate::persist::read_hasher(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, dim: usize) -> Vec<f32> {
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            for d in 0..dim {
                data.push(((i * (d + 2) * 7919) % 199) as f32 / 100.0 - 1.0 + 5.0);
            }
        }
        data
    }

    #[test]
    fn deterministic_per_seed() {
        let data = ring_data(100, 4);
        let a = Lsh::train(&data, 4, 8, 3).unwrap();
        let b = Lsh::train(&data, 4, 8, 3).unwrap();
        let c = Lsh::train(&data, 4, 8, 4).unwrap();
        let x = &data[..4];
        assert_eq!(a.encode(x), b.encode(x));
        // Different seeds give different hyperplanes (almost surely different
        // codes somewhere).
        let differs = data
            .chunks_exact(4)
            .any(|row| a.encode(row) != c.encode(row));
        assert!(differs);
    }

    #[test]
    fn mean_centering_balances_bits() {
        // Data offset far from the origin: without centering every sign bit
        // would be constant; with centering each bit must split the data.
        let data = ring_data(500, 4);
        let lsh = Lsh::train(&data, 4, 6, 1).unwrap();
        for bit in 0..6 {
            let ones = data
                .chunks_exact(4)
                .filter(|row| lsh.encode(row) & (1 << bit) != 0)
                .count();
            assert!(ones > 50 && ones < 450, "bit {bit} unbalanced: {ones}/500");
        }
    }

    #[test]
    fn similar_items_share_more_bits_than_distant_ones() {
        // LSH is probabilistic: any single draw of hyperplanes can order one
        // (near, far) pair wrong. Aggregate over several seeds so the test
        // asserts the *property* (closer points collide more) rather than
        // the luck of one draw — this also keeps it robust under simplified
        // RNG implementations in offline CI images.
        let data = ring_data(10, 8);
        let a = [1.0f32; 8];
        let mut near = [1.0f32; 8];
        near[0] = 1.05;
        let far: [f32; 8] = [-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        let ham = |x: u64, y: u64| (x ^ y).count_ones();
        let (mut near_total, mut far_total) = (0u32, 0u32);
        for seed in 1..=9 {
            let lsh = Lsh::train(&data, 8, 32, seed).unwrap();
            near_total += ham(lsh.encode(&a), lsh.encode(&near));
            far_total += ham(lsh.encode(&a), lsh.encode(&far));
        }
        assert!(
            near_total < far_total,
            "near point must share more bits on aggregate: near {near_total}, far {far_total}"
        );
    }

    #[test]
    fn rejects_bad_code_length() {
        let data = ring_data(10, 4);
        assert!(matches!(
            Lsh::train(&data, 4, 0, 1),
            Err(TrainError::BadCodeLength { .. })
        ));
        assert!(matches!(
            Lsh::train(&data, 4, 257, 1),
            Err(TrainError::BadCodeLength { .. })
        ));
        // 65 sat beyond the old u64 ceiling; wide code words made it legal.
        assert!(Lsh::train(&data, 4, 65, 1).is_ok());
    }

    #[test]
    fn trains_without_data() {
        let lsh = Lsh::train(&[], 4, 8, 1).unwrap();
        assert_eq!(lsh.code_length(), 8);
        assert_eq!(lsh.dim(), 4);
    }
}
