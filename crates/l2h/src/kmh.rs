//! K-means hashing (He, Wen & Sun, CVPR 2013), simplified.
//!
//! KMH quantizes each subspace with k-means codewords *indexed by binary
//! codes*, chosen so that codeword distances track the Hamming distances of
//! their indices (affinity preservation). Unlike the sign-threshold models
//! there is no projected vector; the paper's appendix defines the flipping
//! cost of bit `i` as `dist(q, c_{q'}) − dist(q, c_q)` where `c_{q'}` is the
//! codeword whose index differs from the query's codeword only in bit `i`.
//! Because `c_q` is the *nearest* codeword, this cost is non-negative, so
//! GQR runs on it unchanged (Fig 20 of the paper).
//!
//! Simplification vs. the original: we train plain k-means per subspace and
//! then optimize the code↔codeword assignment by local search on the
//! affinity objective, instead of jointly refining codeword positions. The
//! mechanism GQR consumes — per-bit codeword-distance flipping costs — is
//! identical; DESIGN.md records the substitution.

use crate::{check_training_input, HashModel, QueryEncoding, TrainError};
use gqr_linalg::vecops::sq_dist_f32;
use gqr_vq::kmeans::{kmeans, KMeansOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Training options for [`KmeansHashing::train_with`].
#[derive(Clone, Debug)]
pub struct KmhOptions {
    /// Bits per subspace (`b`); each subspace trains `2^b` codewords.
    pub bits_per_subspace: usize,
    /// k-means settings per subspace.
    pub kmeans: KMeansOptions,
    /// Local-search steps for the affinity-preserving index assignment.
    pub assignment_steps: usize,
    /// Joint codeword-refinement iterations (the original KMH's
    /// affinity-preserving update); `0` keeps the plain k-means codewords.
    pub refine_iters: usize,
    /// Weight `λ` of the affinity term in the codeword update.
    pub lambda: f64,
    /// Seed for the assignment local search.
    pub seed: u64,
}

impl Default for KmhOptions {
    fn default() -> Self {
        KmhOptions {
            bits_per_subspace: 4,
            kmeans: KMeansOptions::default(),
            assignment_steps: 400,
            refine_iters: 10,
            lambda: 1.0,
            seed: 0,
        }
    }
}

/// One subspace: a contiguous dimension range and `2^bits` codewords stored
/// *by code* (codeword of code `c` is row `c`).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Subspace {
    lo: usize,
    hi: usize,
    bits: usize,
    /// Row-major `2^bits × (hi-lo)`, row index == binary code.
    codewords: Vec<f32>,
}

impl Subspace {
    #[inline]
    fn sub_dim(&self) -> usize {
        self.hi - self.lo
    }

    /// Nearest codeword and all squared distances for a query subvector.
    fn distances(&self, q_sub: &[f32]) -> Vec<f32> {
        self.codewords
            .chunks_exact(self.sub_dim())
            .map(|cw| sq_dist_f32(q_sub, cw))
            .collect()
    }

    fn nearest(&self, q_sub: &[f32]) -> usize {
        let mut best = (0usize, f32::INFINITY);
        for (c, cw) in self.codewords.chunks_exact(self.sub_dim()).enumerate() {
            let d = sq_dist_f32(q_sub, cw);
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }
}

/// A trained K-means-hashing model.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KmeansHashing {
    dim: usize,
    m: usize,
    subspaces: Vec<Subspace>,
    affinity_error: f64,
}

impl KmeansHashing {
    /// Train with default options.
    pub fn train(data: &[f32], dim: usize, m: usize) -> Result<KmeansHashing, TrainError> {
        Self::train_with(data, dim, m, &KmhOptions::default())
    }

    /// Train with explicit options. The code length `m` is split into
    /// subspaces of `bits_per_subspace` bits (the last subspace takes the
    /// remainder); dimensions are split evenly across subspaces.
    pub fn train_with(
        data: &[f32],
        dim: usize,
        m: usize,
        opts: &KmhOptions,
    ) -> Result<KmeansHashing, TrainError> {
        let b = opts.bits_per_subspace.clamp(1, 8);
        let n_sub = m.div_ceil(b);
        if n_sub > dim {
            return Err(TrainError::BadCodeLength {
                requested: m,
                max: dim * b,
            });
        }
        let min_rows = 1usize << b;
        let n = check_training_input(data, dim, m, crate::MAX_NARROW_CODE_LENGTH, min_rows)?;

        // Even dimension split.
        let base = dim / n_sub;
        let extra = dim % n_sub;
        let mut bounds = vec![0usize];
        for s in 0..n_sub {
            bounds.push(bounds[s] + base + usize::from(s < extra));
        }

        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x006b_6d68);
        let mut subspaces = Vec::with_capacity(n_sub);
        let mut total_affinity = 0.0f64;
        let mut sub_buf = Vec::new();
        for s in 0..n_sub {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let sub_dim = hi - lo;
            let bits = if s + 1 == n_sub {
                m - b * (n_sub - 1)
            } else {
                b
            };
            let k = 1usize << bits;

            sub_buf.clear();
            sub_buf.reserve(n * sub_dim);
            for row in data.chunks_exact(dim) {
                sub_buf.extend_from_slice(&row[lo..hi]);
            }
            let mut km_opts = opts.kmeans.clone();
            km_opts.seed = km_opts.seed.wrapping_add(s as u64 * 977);
            let km = kmeans(&sub_buf, sub_dim, k.min(n), &km_opts);

            // If n < k we pad by duplicating the last centroid (degenerate
            // but well-defined); normal configurations never hit this.
            let mut cents = km.centroids.clone();
            while cents.len() < k * sub_dim {
                let last = cents.len() - sub_dim;
                let dup = cents[last..].to_vec();
                cents.extend_from_slice(&dup);
            }

            let (perm, err) =
                optimize_assignment(&cents, sub_dim, bits, opts.assignment_steps, &mut rng);
            total_affinity += err;

            // Store codewords indexed by code: codeword(code) = centroid i
            // with perm[i] == code.
            let mut codewords = vec![0.0f32; k * sub_dim];
            for (i, &code) in perm.iter().enumerate() {
                codewords[code * sub_dim..(code + 1) * sub_dim]
                    .copy_from_slice(&cents[i * sub_dim..(i + 1) * sub_dim]);
            }
            if opts.refine_iters > 0 && k > 1 {
                refine_codewords(
                    &mut codewords,
                    sub_dim,
                    bits,
                    &sub_buf,
                    opts.refine_iters,
                    opts.lambda,
                );
            }
            subspaces.push(Subspace {
                lo,
                hi,
                bits,
                codewords,
            });
        }
        Ok(KmeansHashing {
            dim,
            m,
            subspaces,
            affinity_error: total_affinity,
        })
    }

    /// Total affinity error after index assignment (training diagnostic).
    pub fn affinity_error(&self) -> f64 {
        self.affinity_error
    }

    /// Number of subspaces.
    pub fn n_subspaces(&self) -> usize {
        self.subspaces.len()
    }
}

/// Affinity objective for one assignment: Σ_{i<j} (d(cᵢ,cⱼ) − s·h(πᵢ,πⱼ))²
/// with the scale `s` fitted in closed form. Returns the error.
fn affinity_error(dists: &[f64], perm: &[usize], k: usize) -> f64 {
    // Fit s = Σ d·h / Σ h².
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..k {
        for j in (i + 1)..k {
            let h = ((perm[i] ^ perm[j]).count_ones()) as f64;
            let d = dists[i * k + j];
            num += d * h;
            den += h * h;
        }
    }
    let s = if den > 0.0 { (num / den).max(0.0) } else { 0.0 };
    let mut err = 0.0f64;
    for i in 0..k {
        for j in (i + 1)..k {
            let h = ((perm[i] ^ perm[j]).count_ones()) as f64;
            let d = dists[i * k + j];
            err += (d - s * h) * (d - s * h);
        }
    }
    err
}

/// Local-search assignment of binary codes to centroids: start from the
/// identity, try random swaps, keep improvements. Returns (perm, error)
/// where `perm[i]` is the code of centroid `i`.
fn optimize_assignment(
    centroids: &[f32],
    sub_dim: usize,
    bits: usize,
    steps: usize,
    rng: &mut ChaCha8Rng,
) -> (Vec<usize>, f64) {
    let k = 1usize << bits;
    // Pairwise codeword *Euclidean* distances (the original paper matches
    // Euclidean distance against Hamming distance).
    let mut dists = vec![0.0f64; k * k];
    for i in 0..k {
        for j in (i + 1)..k {
            let d = sq_dist_f32(
                &centroids[i * sub_dim..(i + 1) * sub_dim],
                &centroids[j * sub_dim..(j + 1) * sub_dim],
            )
            .sqrt() as f64;
            dists[i * k + j] = d;
            dists[j * k + i] = d;
        }
    }

    let mut perm: Vec<usize> = (0..k).collect();
    let mut best = affinity_error(&dists, &perm, k);
    if k <= 2 {
        return (perm, best);
    }
    for _ in 0..steps {
        let a = rng.gen_range(0..k);
        let mut b = rng.gen_range(0..k);
        if a == b {
            b = (b + 1) % k;
        }
        perm.swap(a, b);
        let err = affinity_error(&dists, &perm, k);
        if err < best {
            best = err;
        } else {
            perm.swap(a, b);
        }
    }
    (perm, best)
}

/// The original KMH's joint optimization (He et al. §3.2, simplified): pull
/// each codeword toward (a) the mean of its assigned points (quantization
/// term) and (b) per-peer target positions at Euclidean distance `s·√h`
/// along the current inter-codeword directions (affinity term), where `h`
/// is the Hamming distance of the codewords' indices and `s` is refitted
/// each round. Codeword *indices* stay fixed, so the binary codes of
/// indexed items only change through reassignment to the moved codewords.
fn refine_codewords(
    codewords: &mut [f32],
    sub_dim: usize,
    bits: usize,
    points: &[f32],
    iters: usize,
    lambda: f64,
) {
    let k = 1usize << bits;
    let n = points.len() / sub_dim;
    if n == 0 {
        return;
    }
    let mut counts = vec![0usize; k];
    let mut sums = vec![0.0f64; k * sub_dim];

    for _ in 0..iters {
        // Assignment + per-cell sums.
        counts.iter_mut().for_each(|c| *c = 0);
        sums.iter_mut().for_each(|s| *s = 0.0);
        for row in points.chunks_exact(sub_dim) {
            let (mut best, mut best_d) = (0usize, f32::INFINITY);
            for (c, cw) in codewords.chunks_exact(sub_dim).enumerate() {
                let d = sq_dist_f32(row, cw);
                if d < best_d {
                    best = c;
                    best_d = d;
                }
            }
            counts[best] += 1;
            for (acc, &x) in sums[best * sub_dim..(best + 1) * sub_dim]
                .iter_mut()
                .zip(row)
            {
                *acc += x as f64;
            }
        }

        // Refit the hypercube scale s: min Σ wᵢⱼ (dᵢⱼ − s·√hᵢⱼ)².
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..k {
            for j in (i + 1)..k {
                let d = (sq_dist_f32(
                    &codewords[i * sub_dim..(i + 1) * sub_dim],
                    &codewords[j * sub_dim..(j + 1) * sub_dim],
                ) as f64)
                    .sqrt();
                let rh = (((i ^ j).count_ones()) as f64).sqrt();
                let w = (counts[i] * counts[j]) as f64 + 1.0;
                num += w * d * rh;
                den += w * rh * rh;
            }
        }
        let s = if den > 0.0 {
            (num / den).max(1e-12)
        } else {
            1.0
        };

        // Codeword update: data mean + λ-weighted affinity targets.
        let mean_count = (n as f64 / k as f64).max(1.0);
        let snapshot = codewords.to_vec();
        for j in 0..k {
            let mut acc: Vec<f64> = sums[j * sub_dim..(j + 1) * sub_dim].to_vec();
            let mut weight = counts[j] as f64;
            let cj = &snapshot[j * sub_dim..(j + 1) * sub_dim];
            for i in 0..k {
                if i == j {
                    continue;
                }
                let ci = &snapshot[i * sub_dim..(i + 1) * sub_dim];
                let d = (sq_dist_f32(ci, cj) as f64).sqrt();
                if d <= 1e-12 {
                    continue;
                }
                let target = s * (((i ^ j).count_ones()) as f64).sqrt();
                // Pull strength scales with both cells' population.
                let w = lambda * ((counts[i] * counts[j]) as f64 + 1.0) / (mean_count * mean_count)
                    * mean_count
                    / k as f64;
                let ratio = target / d;
                for ((a, &cjv), &civ) in acc.iter_mut().zip(cj).zip(ci) {
                    let hat = civ as f64 + (cjv as f64 - civ as f64) * ratio;
                    *a += w * hat;
                }
                weight += w;
            }
            if weight > 0.0 {
                for (out, a) in codewords[j * sub_dim..(j + 1) * sub_dim]
                    .iter_mut()
                    .zip(&acc)
                {
                    *out = (a / weight) as f32;
                }
            }
        }
    }
}

impl HashModel for KmeansHashing {
    fn dim(&self) -> usize {
        self.dim
    }

    fn code_length(&self) -> usize {
        self.m
    }

    fn encode(&self, x: &[f32]) -> u64 {
        assert_eq!(x.len(), self.dim, "input dimensionality mismatch");
        let mut code = 0u64;
        let mut shift = 0;
        for s in &self.subspaces {
            let c = s.nearest(&x[s.lo..s.hi]);
            code |= (c as u64) << shift;
            shift += s.bits;
        }
        code
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        let mut code = 0u64;
        let mut flip_costs = Vec::with_capacity(self.m);
        let mut shift = 0;
        for s in &self.subspaces {
            let d = s.distances(&q[s.lo..s.hi]);
            let (mut best, mut best_d) = (0usize, f32::INFINITY);
            for (c, &dc) in d.iter().enumerate() {
                if dc < best_d {
                    best = c;
                    best_d = dc;
                }
            }
            code |= (best as u64) << shift;
            // Per-bit cost: distance increase when only that bit flips.
            // Compare √distances so costs add like the L1 QD of the linear
            // models; clamp for safety against float noise.
            let base = (best_d as f64).sqrt();
            for t in 0..s.bits {
                let alt = best ^ (1 << t);
                let cost = (d[alt] as f64).sqrt() - base;
                flip_costs.push(cost.max(0.0));
            }
            shift += s.bits;
        }
        QueryEncoding { code, flip_costs }
    }

    fn name(&self) -> &'static str {
        "KMH"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        w.put_usize(self.dim);
        w.put_usize(self.m);
        w.put_f64(self.affinity_error);
        w.put_usize(self.subspaces.len());
        for s in &self.subspaces {
            w.put_usize(s.lo);
            w.put_usize(s.hi);
            w.put_usize(s.bits);
            w.put_f32_slice(&s.codewords);
        }
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Kmh,
            bytes: w.into_bytes(),
        })
    }
}

impl KmeansHashing {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<KmeansHashing, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let dim = r.get_usize()?;
        let m = r.get_usize()?;
        let affinity_error = r.get_f64()?;
        if m == 0 || m > crate::MAX_NARROW_CODE_LENGTH {
            return Err(WireError::Malformed("KMH code length out of range"));
        }
        let n_sub = r.get_usize()?;
        if n_sub == 0 || n_sub > dim {
            return Err(WireError::Malformed("KMH subspace count out of range"));
        }
        let mut subspaces = Vec::with_capacity(n_sub);
        for _ in 0..n_sub {
            let lo = r.get_usize()?;
            let hi = r.get_usize()?;
            let bits = r.get_usize()?;
            let codewords = r.get_f32_vec()?;
            if lo >= hi || hi > dim || bits == 0 || bits > 8 {
                return Err(WireError::Malformed("KMH subspace shape out of range"));
            }
            if codewords.len() != (1usize << bits) * (hi - lo) {
                return Err(WireError::Malformed("KMH codeword buffer size mismatch"));
            }
            subspaces.push(Subspace {
                lo,
                hi,
                bits,
                codewords,
            });
        }
        Ok(KmeansHashing {
            dim,
            m,
            subspaces,
            affinity_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four tight blobs on a line: ideal for 2-bit KMH on one subspace.
    fn line_blobs() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..200 {
            let c = (i % 4) as f32 * 10.0;
            let j = (i / 4) as f32 * 0.001;
            data.extend_from_slice(&[c + j, -c - j]);
        }
        data
    }

    fn opts(b: usize) -> KmhOptions {
        KmhOptions {
            bits_per_subspace: b,
            kmeans: KMeansOptions {
                seed: 13,
                ..Default::default()
            },
            assignment_steps: 400,
            seed: 13,
            ..Default::default()
        }
    }

    #[test]
    fn four_blobs_get_four_codes() {
        let data = line_blobs();
        let kmh = KmeansHashing::train_with(&data, 2, 2, &opts(2)).unwrap();
        let codes: std::collections::HashSet<u64> =
            data.chunks_exact(2).map(|r| kmh.encode(r)).collect();
        assert_eq!(codes.len(), 4);
    }

    #[test]
    fn adjacent_blobs_have_closer_codes_than_distant_ones() {
        // Affinity preservation: Hamming(code(blob0), code(blob1)) should not
        // exceed Hamming(code(blob0), code(blob3)).
        let data = line_blobs();
        let kmh = KmeansHashing::train_with(&data, 2, 2, &opts(2)).unwrap();
        let c: Vec<u64> = (0..4)
            .map(|i| kmh.encode(&[i as f32 * 10.0, -(i as f32) * 10.0]))
            .collect();
        let h = |a: u64, b: u64| (a ^ b).count_ones();
        assert!(h(c[0], c[1]) <= h(c[0], c[3]), "affinity violated: {:?}", c);
    }

    #[test]
    fn query_flip_costs_nonnegative_and_sized() {
        let data = line_blobs();
        let kmh = KmeansHashing::train_with(&data, 2, 2, &opts(2)).unwrap();
        let qe = kmh.encode_query(&[5.0, -5.0]);
        assert_eq!(qe.flip_costs.len(), 2);
        assert!(qe.flip_costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn flip_cost_reflects_codeword_geometry() {
        // Query on top of blob 0: flipping to the adjacent blob's code must
        // cost less than flipping to a distant blob's code... at minimum, the
        // query's own code has zero-distance base and all flips cost > 0.
        let data = line_blobs();
        let kmh = KmeansHashing::train_with(&data, 2, 2, &opts(2)).unwrap();
        let qe = kmh.encode_query(&[0.0, 0.0]);
        assert!(
            qe.flip_costs.iter().all(|&c| c > 0.0),
            "all flips leave the nearest codeword"
        );
    }

    #[test]
    fn multi_subspace_split() {
        let mut data = Vec::new();
        for i in 0..300 {
            data.extend_from_slice(&[
                (i % 4) as f32 * 5.0,
                ((i / 4) % 4) as f32 * 5.0,
                (i % 3) as f32,
                (i % 5) as f32,
            ]);
        }
        let kmh = KmeansHashing::train_with(&data, 4, 4, &opts(2)).unwrap();
        assert_eq!(kmh.n_subspaces(), 2);
        assert_eq!(kmh.code_length(), 4);
        let qe = kmh.encode_query(&data[..4]);
        assert_eq!(qe.flip_costs.len(), 4);
    }

    #[test]
    fn refinement_changes_codewords_but_keeps_the_contract() {
        let data = line_blobs();
        let plain = KmeansHashing::train_with(
            &data,
            2,
            2,
            &KmhOptions {
                refine_iters: 0,
                ..opts(2)
            },
        )
        .unwrap();
        let refined = KmeansHashing::train_with(
            &data,
            2,
            2,
            &KmhOptions {
                refine_iters: 10,
                lambda: 1.0,
                ..opts(2)
            },
        )
        .unwrap();
        // The affinity pull must actually move codewords: some item changes
        // bucket or the query costs differ.
        let differs = data.chunks_exact(2).take(50).any(|row| {
            plain.encode(row) != refined.encode(row)
                || plain.encode_query(row).flip_costs != refined.encode_query(row).flip_costs
        });
        assert!(differs, "refinement must have an effect");
        // Contract still holds.
        for row in data.chunks_exact(2).take(20) {
            let qe = refined.encode_query(row);
            assert_eq!(qe.code, refined.encode(row));
            assert!(qe.flip_costs.iter().all(|&c| c >= 0.0 && c.is_finite()));
        }
    }

    #[test]
    fn rejects_more_subspaces_than_dims() {
        let data = line_blobs();
        // m=8, b=1 → 8 subspaces > 2 dims.
        assert!(matches!(
            KmeansHashing::train_with(&data, 2, 8, &opts(1)),
            Err(TrainError::BadCodeLength { .. })
        ));
    }

    #[test]
    fn encode_matches_nearest_codeword_semantics() {
        let data = line_blobs();
        let kmh = KmeansHashing::train_with(&data, 2, 2, &opts(2)).unwrap();
        // encode_query's code must equal encode's code.
        for row in data.chunks_exact(2).take(20) {
            assert_eq!(kmh.encode(row), kmh.encode_query(row).code);
        }
    }
}
