//! Semi-supervised hashing (SSH, Wang, Kumar & Chang, CVPR 2010).
//!
//! The paper lists SSH among the L2H algorithms its querying method is
//! compatible with (§1, §7); this implementation is the relaxed
//! eigen-solution: hash directions are the top eigenvectors of the
//! *adjusted covariance*
//!
//! `M = X_l·S·X_lᵀ + η·Cov(X)`
//!
//! where `S` encodes pairwise supervision (+1 must-link, −1 cannot-link)
//! over the labeled subset and `η` weights the unsupervised variance
//! regularizer. The result is a linear sign-threshold model, so QD ranking
//! applies unchanged.

use crate::{check_training_input, HashModel, LinearHasher, QueryEncoding, TrainError};
use gqr_linalg::vecops::mean_rows;
use gqr_linalg::{symmetric_eigen, Matrix};

/// A pairwise supervision constraint between two item ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair {
    /// First item id.
    pub a: u32,
    /// Second item id.
    pub b: u32,
    /// `true` = must-link (semantically similar), `false` = cannot-link.
    pub similar: bool,
}

impl Pair {
    /// Must-link pair.
    pub fn similar(a: u32, b: u32) -> Pair {
        Pair {
            a,
            b,
            similar: true,
        }
    }

    /// Cannot-link pair.
    pub fn dissimilar(a: u32, b: u32) -> Pair {
        Pair {
            a,
            b,
            similar: false,
        }
    }
}

/// Options for [`Ssh::train_with`].
#[derive(Clone, Debug)]
pub struct SshOptions {
    /// Weight of the unsupervised variance term (`η`); larger values pull
    /// the solution toward plain PCAH.
    pub eta: f64,
}

impl Default for SshOptions {
    fn default() -> Self {
        SshOptions { eta: 1.0 }
    }
}

/// A trained semi-supervised hashing model (linear, sign-threshold).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Ssh {
    hasher: LinearHasher,
}

impl Ssh {
    /// Train with default options.
    pub fn train(data: &[f32], dim: usize, m: usize, pairs: &[Pair]) -> Result<Ssh, TrainError> {
        Self::train_with(data, dim, m, pairs, &SshOptions::default())
    }

    /// Train on row-major data with pairwise supervision.
    ///
    /// Pair ids must index rows of `data`. With an empty pair set the model
    /// degenerates to PCAH (pure variance maximization), which is also the
    /// correct limit of the objective.
    pub fn train_with(
        data: &[f32],
        dim: usize,
        m: usize,
        pairs: &[Pair],
        opts: &SshOptions,
    ) -> Result<Ssh, TrainError> {
        let n = check_training_input(data, dim, m, dim, 2)?;
        for p in pairs {
            if p.a as usize >= n || p.b as usize >= n {
                return Err(TrainError::NotEnoughData {
                    needed: p.a.max(p.b) as usize + 1,
                    got: n,
                });
            }
        }
        let mean = mean_rows(data, dim);
        let centered = |id: u32| -> Vec<f64> {
            data[id as usize * dim..(id as usize + 1) * dim]
                .iter()
                .zip(&mean)
                .map(|(&x, mu)| x as f64 - mu)
                .collect()
        };

        // Supervised term: Σ s_ij·(x_i x_jᵀ + x_j x_iᵀ)/2, mean-centered.
        // Must-link and cannot-link sums are normalized *separately* so an
        // imbalanced pair set (e.g. many more must-links) cannot drown out
        // the other side — the balanced variant of SSH's objective.
        let mut must = Matrix::zeros(dim, dim);
        let mut cannot = Matrix::zeros(dim, dim);
        let (mut n_must, mut n_cannot) = (0usize, 0usize);
        for p in pairs {
            let xi = centered(p.a);
            let xj = centered(p.b);
            let target = if p.similar {
                n_must += 1;
                &mut must
            } else {
                n_cannot += 1;
                &mut cannot
            };
            for r in 0..dim {
                let row = target.row_mut(r);
                let xir = xi[r];
                let xjr = xj[r];
                for (c, val) in row.iter_mut().enumerate() {
                    *val += 0.5 * (xir * xj[c] + xjr * xi[c]);
                }
            }
        }
        let mut adjusted = Matrix::zeros(dim, dim);
        if n_must > 0 {
            adjusted = &adjusted + &must.scale(1.0 / n_must as f64);
        }
        if n_cannot > 0 {
            adjusted = &adjusted - &cannot.scale(1.0 / n_cannot as f64);
        }

        // Unsupervised regularizer: η·Cov(X).
        let mut cov = Matrix::zeros(dim, dim);
        let mut c_buf = vec![0.0f64; dim];
        for row in data.chunks_exact(dim) {
            for ((c, &x), mu) in c_buf.iter_mut().zip(row).zip(&mean) {
                *c = x as f64 - mu;
            }
            for r in 0..dim {
                let cr = c_buf[r];
                if cr == 0.0 {
                    continue;
                }
                let out = cov.row_mut(r);
                for (o, &cc) in out.iter_mut().zip(&c_buf) {
                    *o += cr * cc;
                }
            }
        }
        cov = cov.scale(1.0 / (n as f64 - 1.0));
        let objective = &adjusted + &cov.scale(opts.eta);

        let eig = symmetric_eigen(&objective);
        let mut w = Matrix::zeros(m, dim);
        for r in 0..m {
            for c in 0..dim {
                w[(r, c)] = eig.vectors[(c, r)];
            }
        }
        let bias: Vec<f64> = (0..m)
            .map(|r| {
                -w.row(r)
                    .iter()
                    .zip(&mean)
                    .map(|(wi, mu)| wi * mu)
                    .sum::<f64>()
            })
            .collect();
        Ok(Ssh {
            hasher: LinearHasher::new(w, bias),
        })
    }

    /// The underlying linear hasher.
    pub fn hasher(&self) -> &LinearHasher {
        &self.hasher
    }

    /// Fraction of supervision pairs the codes respect: must-link pairs in
    /// the same bucket-half per bit, cannot-link pairs split. A training
    /// diagnostic in [0, 1].
    pub fn supervision_agreement(&self, data: &[f32], pairs: &[Pair]) -> f64 {
        if pairs.is_empty() {
            return 1.0;
        }
        let dim = self.dim();
        let m = self.code_length() as u32;
        let mut agree = 0.0f64;
        for p in pairs {
            let ca = self.encode(&data[p.a as usize * dim..(p.a as usize + 1) * dim]);
            let cb = self.encode(&data[p.b as usize * dim..(p.b as usize + 1) * dim]);
            let same_bits = m - (ca ^ cb).count_ones();
            let frac_same = same_bits as f64 / m as f64;
            agree += if p.similar {
                frac_same
            } else {
                1.0 - frac_same
            };
        }
        agree / pairs.len() as f64
    }
}

impl HashModel for Ssh {
    fn dim(&self) -> usize {
        self.hasher.dim()
    }

    fn code_length(&self) -> usize {
        self.hasher.code_length()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        self.hasher.encode(x)
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        self.hasher.encode_query(q)
    }

    fn encode_wide(&self, x: &[f32]) -> crate::CodeBlocks {
        self.hasher.encode_wide(x)
    }

    fn encode_query_wide(&self, q: &[f32]) -> crate::WideQueryEncoding {
        self.hasher.encode_query_wide(q)
    }

    fn spectral_norm(&self) -> Option<f64> {
        Some(self.hasher.spectral_norm())
    }

    fn name(&self) -> &'static str {
        "SSH"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        crate::persist::write_hasher(&mut w, &self.hasher);
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Ssh,
            bytes: w.into_bytes(),
        })
    }
}

impl Ssh {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<Ssh, gqr_linalg::wire::WireError> {
        Ok(Ssh {
            hasher: crate::persist::read_hasher(r)?,
        })
    }
}

/// Build supervision pairs from class labels: sample `per_class` must-link
/// pairs within each class and as many cannot-link pairs across classes,
/// deterministically.
pub fn pairs_from_labels(labels: &[u32], per_class: usize) -> Vec<Pair> {
    use std::collections::HashMap;
    let mut by_class: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        by_class.entry(l).or_default().push(i as u32);
    }
    let mut classes: Vec<&Vec<u32>> = by_class.values().collect();
    classes.sort_by_key(|v| v[0]);

    let mut pairs = Vec::new();
    for members in &classes {
        for t in 0..per_class.min(members.len().saturating_sub(1)) {
            pairs.push(Pair::similar(members[t], members[t + 1]));
        }
    }
    for w in classes.windows(2) {
        for (&a, &b) in w[0].iter().zip(w[1].iter()).take(per_class) {
            pairs.push(Pair::dissimilar(a, b));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two interleaved stripes that PCA cannot separate on its first
    /// direction, but supervision can: variance is dominated by the y-axis,
    /// labels split along x.
    fn striped() -> (Vec<f32>, Vec<u32>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let y = (i as f32 / 10.0) - 10.0; // big spread
            let x = if i % 2 == 0 { -1.0 } else { 1.0 }; // label signal
            data.extend_from_slice(&[x, y]);
            labels.push((i % 2) as u32);
        }
        (data, labels)
    }

    #[test]
    fn supervision_beats_pca_on_label_signal() {
        let (data, labels) = striped();
        let pairs = pairs_from_labels(&labels, 40);
        // Strong supervision, weak regularizer.
        let ssh = Ssh::train_with(&data, 2, 1, &pairs, &SshOptions { eta: 0.01 }).unwrap();
        let agree = ssh.supervision_agreement(&data, &pairs);
        assert!(
            agree > 0.9,
            "SSH should respect supervision, agreement {agree}"
        );

        // PCAH's first bit follows the y-spread and ignores the labels.
        let pcah = crate::pcah::Pcah::train(&data, 2, 1).unwrap();
        let mut pcah_agree = 0.0;
        for p in &pairs {
            let ca = pcah.encode(&data[p.a as usize * 2..p.a as usize * 2 + 2]);
            let cb = pcah.encode(&data[p.b as usize * 2..p.b as usize * 2 + 2]);
            let same = (ca ^ cb).count_ones() == 0;
            pcah_agree += f64::from(same == p.similar);
        }
        pcah_agree /= pairs.len() as f64;
        assert!(
            agree > pcah_agree,
            "SSH ({agree}) must beat PCAH ({pcah_agree}) on supervision"
        );
    }

    #[test]
    fn empty_pairs_degenerates_to_pca_direction() {
        let (data, _) = striped();
        let ssh = Ssh::train(&data, 2, 1, &[]).unwrap();
        let pcah = crate::pcah::Pcah::train(&data, 2, 1).unwrap();
        // Same first direction up to sign: encodings equal or fully flipped.
        let codes_ssh: Vec<u64> = data.chunks_exact(2).map(|r| ssh.encode(r)).collect();
        let codes_pcah: Vec<u64> = data.chunks_exact(2).map(|r| pcah.encode(r)).collect();
        let same = codes_ssh
            .iter()
            .zip(&codes_pcah)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            same == 0 || same == codes_ssh.len(),
            "{same} of {}",
            codes_ssh.len()
        );
    }

    #[test]
    fn rejects_out_of_range_pairs() {
        let (data, _) = striped();
        let bad = [Pair::similar(0, 9_999)];
        assert!(matches!(
            Ssh::train(&data, 2, 1, &bad),
            Err(TrainError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn pairs_from_labels_generates_both_kinds() {
        let labels = [0u32, 0, 0, 1, 1, 1];
        let pairs = pairs_from_labels(&labels, 2);
        assert!(pairs.iter().any(|p| p.similar));
        assert!(pairs.iter().any(|p| !p.similar));
        for p in &pairs {
            if p.similar {
                assert_eq!(labels[p.a as usize], labels[p.b as usize]);
            } else {
                assert_ne!(labels[p.a as usize], labels[p.b as usize]);
            }
        }
    }

    #[test]
    fn works_with_gqr_query_encoding() {
        let (data, labels) = striped();
        let pairs = pairs_from_labels(&labels, 20);
        let ssh = Ssh::train(&data, 2, 2, &pairs).unwrap();
        let qe = ssh.encode_query(&[0.5, 1.0]);
        assert_eq!(qe.flip_costs.len(), 2);
        assert!(qe.flip_costs.iter().all(|&c| c >= 0.0));
        assert!(ssh.spectral_norm().is_some());
    }
}
