//! Iterative quantization (ITQ, Gong & Lazebnik CVPR 2011): PCA followed by a
//! rotation learned to minimize binary quantization error.

use crate::{check_training_input, HashModel, LinearHasher, QueryEncoding, TrainError};
use gqr_linalg::svd::svd;
use gqr_linalg::{random_rotation, Matrix, Pca};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training options for [`Itq::train`].
#[derive(Clone, Debug)]
pub struct ItqOptions {
    /// Alternating-minimization iterations (the reference implementation
    /// uses 50).
    pub iterations: usize,
    /// RNG seed for the initial random rotation.
    pub seed: u64,
    /// Cap on rows used for the rotation refinement (the PCA still sees all
    /// rows). `0` disables subsampling. ITQ's per-iteration cost is
    /// `O(n·m²)`, so large datasets train on a sample, like the reference
    /// MATLAB code's common usage.
    pub max_train_rows: usize,
}

impl Default for ItqOptions {
    fn default() -> Self {
        ItqOptions {
            iterations: 50,
            seed: 0,
            max_train_rows: 20_000,
        }
    }
}

/// Iterative quantization: hash matrix `W = Rᵀ·P` where `P` holds the top-`m`
/// principal directions and `R` is the learned `m×m` rotation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Itq {
    hasher: LinearHasher,
    final_quant_error: f64,
}

impl Itq {
    /// Train with default options.
    pub fn train(data: &[f32], dim: usize, m: usize) -> Result<Itq, TrainError> {
        Self::train_with(data, dim, m, &ItqOptions::default())
    }

    /// Train with explicit options.
    pub fn train_with(
        data: &[f32],
        dim: usize,
        m: usize,
        opts: &ItqOptions,
    ) -> Result<Itq, TrainError> {
        let n = check_training_input(data, dim, m, dim, 2)?;
        let pca = Pca::fit(data, dim, m);

        // Rows used for rotation refinement (deterministic stride subsample).
        let train_rows: Vec<usize> = if opts.max_train_rows > 0 && n > opts.max_train_rows {
            let stride = n as f64 / opts.max_train_rows as f64;
            (0..opts.max_train_rows)
                .map(|i| (i as f64 * stride) as usize)
                .collect()
        } else {
            (0..n).collect()
        };

        // V: projected (mean-centered) training rows, t×m.
        let mut v = Matrix::zeros(train_rows.len(), m);
        for (vi, &row) in train_rows.iter().enumerate() {
            let p = pca.project(&data[row * dim..(row + 1) * dim]);
            v.row_mut(vi).copy_from_slice(&p);
        }

        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x17_c0de);
        let mut r = random_rotation(m, &mut rng);
        let mut quant_error = f64::INFINITY;

        for _ in 0..opts.iterations.max(1) {
            // Fix R: B = sgn(V·R), encoded ±1.
            let vr = v.matmul(&r);
            // Fix B: maximize tr(Rᵀ·VᵀB) ⇒ R = polar factor of VᵀB.
            let mut vtb = Matrix::zeros(m, m);
            let mut err = 0.0f64;
            for row in 0..vr.rows() {
                let vr_row = vr.row(row);
                let v_row = v.row(row);
                for j in 0..m {
                    let b = if vr_row[j] >= 0.0 { 1.0 } else { -1.0 };
                    err += (vr_row[j] - b) * (vr_row[j] - b);
                    for i in 0..m {
                        vtb[(i, j)] += v_row[i] * b;
                    }
                }
            }
            quant_error = err / vr.rows().max(1) as f64;
            let s = svd(&vtb);
            // tr(Rᵀ·M) with M = VᵀB is maximized at R = U·Vᵀ of M's SVD.
            r = s.u.matmul(&s.v.transpose());
        }

        // Final hash matrix: p(x) = Rᵀ·P·(x − µ) ⇒ W = Rᵀ·P, bias = −W·µ.
        let w = r.transpose().matmul(&pca.components);
        let bias: Vec<f64> = (0..m)
            .map(|row| {
                -w.row(row)
                    .iter()
                    .zip(&pca.mean)
                    .map(|(wi, mu)| wi * mu)
                    .sum::<f64>()
            })
            .collect();
        Ok(Itq {
            hasher: LinearHasher::new(w, bias),
            final_quant_error: quant_error,
        })
    }

    /// Mean squared quantization error `‖sgn(VR) − VR‖²/n` at the last
    /// iteration (training diagnostic; decreases across iterations).
    pub fn quantization_error(&self) -> f64 {
        self.final_quant_error
    }

    /// The underlying linear hasher.
    pub fn hasher(&self) -> &LinearHasher {
        &self.hasher
    }
}

impl HashModel for Itq {
    fn dim(&self) -> usize {
        self.hasher.dim()
    }

    fn code_length(&self) -> usize {
        self.hasher.code_length()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        self.hasher.encode(x)
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        self.hasher.encode_query(q)
    }

    fn encode_wide(&self, x: &[f32]) -> crate::CodeBlocks {
        self.hasher.encode_wide(x)
    }

    fn encode_query_wide(&self, q: &[f32]) -> crate::WideQueryEncoding {
        self.hasher.encode_query_wide(q)
    }

    fn spectral_norm(&self) -> Option<f64> {
        Some(self.hasher.spectral_norm())
    }

    fn name(&self) -> &'static str {
        "ITQ"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        crate::persist::write_hasher(&mut w, &self.hasher);
        w.put_f64(self.final_quant_error);
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Itq,
            bytes: w.into_bytes(),
        })
    }
}

impl Itq {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<Itq, gqr_linalg::wire::WireError> {
        Ok(Itq {
            hasher: crate::persist::read_hasher(r)?,
            final_quant_error: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Clustered 4-D data: four Gaussian-ish blobs at square corners in the
    /// first two dims.
    fn blobs() -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let corners = [[-4.0f32, -4.0], [-4.0, 4.0], [4.0, -4.0], [4.0, 4.0]];
        let mut data = Vec::new();
        for i in 0..400 {
            let c = corners[i % 4];
            data.push(c[0] + rng.gen::<f32>() - 0.5);
            data.push(c[1] + rng.gen::<f32>() - 0.5);
            data.push(rng.gen::<f32>() * 0.1);
            data.push(rng.gen::<f32>() * 0.1);
        }
        data
    }

    #[test]
    fn iterations_reduce_quantization_error() {
        let data = blobs();
        let short = Itq::train_with(
            &data,
            4,
            2,
            &ItqOptions {
                iterations: 1,
                seed: 7,
                max_train_rows: 0,
            },
        )
        .unwrap();
        let long = Itq::train_with(
            &data,
            4,
            2,
            &ItqOptions {
                iterations: 50,
                seed: 7,
                max_train_rows: 0,
            },
        )
        .unwrap();
        assert!(
            long.quantization_error() <= short.quantization_error() + 1e-9,
            "long {} vs short {}",
            long.quantization_error(),
            short.quantization_error()
        );
    }

    #[test]
    fn rotation_preserves_spectral_norm_of_pca() {
        // W = Rᵀ·P with R orthogonal and P orthonormal rows ⇒ σ_max(W) = 1.
        let data = blobs();
        let itq = Itq::train(&data, 4, 2).unwrap();
        assert!((itq.spectral_norm().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn codes_separate_the_four_blobs() {
        let data = blobs();
        let itq = Itq::train(&data, 4, 2).unwrap();
        // Each corner must map to a distinct 2-bit code.
        let codes: std::collections::HashSet<u64> = [
            [-4.0f32, -4.0, 0.0, 0.0],
            [-4.0, 4.0, 0.0, 0.0],
            [4.0, -4.0, 0.0, 0.0],
            [4.0, 4.0, 0.0, 0.0],
        ]
        .iter()
        .map(|c| itq.encode(c))
        .collect();
        assert_eq!(
            codes.len(),
            4,
            "2-bit ITQ must give all four corners distinct codes"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs();
        let a = Itq::train_with(
            &data,
            4,
            3,
            &ItqOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let b = Itq::train_with(
            &data,
            4,
            3,
            &ItqOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        for row in data.chunks_exact(4).take(20) {
            assert_eq!(a.encode(row), b.encode(row));
        }
    }

    #[test]
    fn subsampled_training_still_reasonable() {
        let data = blobs();
        let sub = Itq::train_with(
            &data,
            4,
            2,
            &ItqOptions {
                max_train_rows: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let codes: std::collections::HashSet<u64> =
            data.chunks_exact(4).map(|r| sub.encode(r)).collect();
        assert!(codes.len() >= 3, "subsampled ITQ still separates blobs");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Itq::train(&[1.0, 2.0, 3.0], 2, 2),
            Err(TrainError::RaggedData)
        ));
        let data = blobs();
        assert!(matches!(
            Itq::train(&data, 4, 5),
            Err(TrainError::BadCodeLength { .. })
        ));
    }
}
