//! PCA hashing (PCAH): threshold the top-`m` principal components.

use crate::{check_training_input, HashModel, LinearHasher, QueryEncoding, TrainError};
use gqr_linalg::Pca;

/// PCA hashing: hash functions are the top-`m` eigenvectors of the data
/// covariance matrix; items are sign-thresholded in the mean-centered PCA
/// space.
///
/// The simplest learned model in the paper — §6.5 shows that PCAH *plus GQR*
/// matches far more expensive pipelines, which is the headline result.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pcah {
    hasher: LinearHasher,
    explained_variance: Vec<f64>,
}

impl Pcah {
    /// Fit on `n × dim` row-major data, producing `m ≤ dim` hash functions.
    pub fn train(data: &[f32], dim: usize, m: usize) -> Result<Pcah, TrainError> {
        check_training_input(data, dim, m, dim, 2)?;
        let pca = Pca::fit(data, dim, m);
        Ok(Pcah::from_pca(pca))
    }

    /// Build from an already-fitted PCA (used by ITQ and spectral hashing to
    /// share the PCA step).
    pub fn from_pca(pca: Pca) -> Pcah {
        // p(x) = C·(x − µ) = C·x − C·µ.
        let bias: Vec<f64> = (0..pca.k())
            .map(|r| {
                -pca.components
                    .row(r)
                    .iter()
                    .zip(&pca.mean)
                    .map(|(c, m)| c * m)
                    .sum::<f64>()
            })
            .collect();
        Pcah {
            hasher: LinearHasher::new(pca.components.clone(), bias),
            explained_variance: pca.explained_variance,
        }
    }

    /// Variance captured by each hash direction (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// The underlying linear hasher.
    pub fn hasher(&self) -> &LinearHasher {
        &self.hasher
    }
}

impl HashModel for Pcah {
    fn dim(&self) -> usize {
        self.hasher.dim()
    }

    fn code_length(&self) -> usize {
        self.hasher.code_length()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        self.hasher.encode(x)
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        self.hasher.encode_query(q)
    }

    fn encode_wide(&self, x: &[f32]) -> crate::CodeBlocks {
        self.hasher.encode_wide(x)
    }

    fn encode_query_wide(&self, q: &[f32]) -> crate::WideQueryEncoding {
        self.hasher.encode_query_wide(q)
    }

    fn spectral_norm(&self) -> Option<f64> {
        Some(self.hasher.spectral_norm())
    }

    fn name(&self) -> &'static str {
        "PCAH"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        crate::persist::write_hasher(&mut w, &self.hasher);
        w.put_f64_slice(&self.explained_variance);
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Pcah,
            bytes: w.into_bytes(),
        })
    }
}

impl Pcah {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<Pcah, gqr_linalg::wire::WireError> {
        Ok(Pcah {
            hasher: crate::persist::read_hasher(r)?,
            explained_variance: r.get_f64_vec()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two elongated blobs along the x-axis: the first PCA bit must separate
    /// them.
    fn two_blobs() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..100 {
            let jitter = (i % 10) as f32 * 0.01;
            data.extend_from_slice(&[-5.0 + jitter, jitter]);
            data.extend_from_slice(&[5.0 - jitter, -jitter]);
        }
        data
    }

    #[test]
    fn first_bit_separates_blobs() {
        let data = two_blobs();
        let model = Pcah::train(&data, 2, 1).unwrap();
        let left = model.encode(&[-5.0, 0.0]);
        let right = model.encode(&[5.0, 0.0]);
        assert_ne!(left & 1, right & 1);
    }

    #[test]
    fn bits_are_balanced_on_symmetric_data() {
        let data = two_blobs();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let ones = data
            .chunks_exact(2)
            .filter(|r| model.encode(r) & 1 != 0)
            .count();
        assert_eq!(ones, 100, "symmetric data splits evenly on the first PC");
    }

    #[test]
    fn flip_cost_is_abs_projection() {
        let data = two_blobs();
        let model = Pcah::train(&data, 2, 2).unwrap();
        let qe = model.encode_query(&[1.0, 2.0]);
        let p = model.hasher().project(&[1.0, 2.0]);
        for (c, pi) in qe.flip_costs.iter().zip(&p) {
            assert!((c - pi.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn explained_variance_descending() {
        let data = two_blobs();
        let model = Pcah::train(&data, 2, 2).unwrap();
        assert!(model.explained_variance()[0] >= model.explained_variance()[1]);
    }

    #[test]
    fn rejects_code_longer_than_dim() {
        let data = two_blobs();
        assert!(matches!(
            Pcah::train(&data, 2, 3),
            Err(TrainError::BadCodeLength { .. })
        ));
    }

    #[test]
    fn spectral_norm_close_to_one_for_orthonormal_rows() {
        // PCA components are orthonormal rows, so σ_max(W) = 1.
        let data = two_blobs();
        let model = Pcah::train(&data, 2, 2).unwrap();
        assert!((model.spectral_norm().unwrap() - 1.0).abs() < 1e-6);
    }
}
