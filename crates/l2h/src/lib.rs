//! Learning-to-hash trainers for the `gqr` workspace.
//!
//! The paper's querying methods (QR/GQR in `gqr-core`) are *general*: they
//! work with any L2H algorithm that maps an item to a projected real vector
//! and quantizes it to a binary code. This crate provides the learners the
//! paper evaluates with:
//!
//! * [`lsh::Lsh`] — sign random projections (data-independent baseline),
//! * [`pcah::Pcah`] — PCA hashing,
//! * [`itq::Itq`] — iterative quantization (PCA + learned rotation),
//! * [`sh::SpectralHashing`] — spectral hashing (analytic Laplacian
//!   eigenfunctions along principal directions),
//! * [`kmh::KmeansHashing`] — K-means hashing (appendix experiment), whose
//!   flipping costs come from codeword distances instead of `|pᵢ(q)|`,
//! * [`ssh::Ssh`] — semi-supervised hashing (extension; the paper lists SSH
//!   among compatible learners),
//! * [`isoh::IsoHash`] — isotropic hashing (extension): equalizes per-bit
//!   variances so QD flipping costs are comparable across bits.
//!
//! All models implement [`HashModel`]: `encode` produces the `m`-bit bucket
//! code of an item, and `encode_query` additionally produces the per-bit
//! **flipping costs** that drive quantization-distance ranking. For
//! sign-threshold models the flipping cost of bit `i` is `|pᵢ(q)|`, exactly
//! the paper's Definition 1.
//!
//! # Example
//!
//! ```
//! use gqr_l2h::{HashModel, pcah::Pcah};
//!
//! // Tiny 2-D dataset, 2-bit codes.
//! let data = vec![1.0f32, 0.0, -1.0, 0.0, 0.0, 1.5, 0.0, -1.5];
//! let model = Pcah::train(&data, 2, 2).unwrap();
//! let q = model.encode_query(&[1.0, 0.2]);
//! assert_eq!(q.flip_costs.len(), 2);
//! ```

#![warn(missing_docs)]
pub mod isoh;
pub mod itq;
pub mod kmh;
pub mod lsh;
pub mod pcah;
pub mod persist;
pub mod sh;
pub mod ssh;

use gqr_linalg::Matrix;

/// Maximum supported code length: codes are packed into up to
/// [`CODE_BLOCKS`] 64-bit blocks.
pub const MAX_CODE_LENGTH: usize = 256;

/// Widest code a single `u64` holds — the ceiling for the narrow
/// [`HashModel::encode`]/[`sign_code`] path. Models with longer codes go
/// through [`HashModel::encode_wide`].
pub const MAX_NARROW_CODE_LENGTH: usize = 64;

/// Number of 64-bit blocks backing [`CodeBlocks`] (`MAX_CODE_LENGTH / 64`).
pub const CODE_BLOCKS: usize = MAX_CODE_LENGTH / 64;

/// A width-agnostic binary code: up to [`MAX_CODE_LENGTH`] bits packed
/// little-endian into `u64` blocks (bit `i` lives in block `i / 64` at
/// position `i % 64`).
///
/// This is the currency between hash models (which know the code length at
/// runtime) and `gqr-core`'s monomorphized `CodeWord` widths: models emit
/// `CodeBlocks`, the engine converts them to the narrowest word that fits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CodeBlocks {
    blocks: [u64; CODE_BLOCKS],
    len: usize,
}

impl CodeBlocks {
    /// The all-zeros code of `len` bits. Panics if `len` exceeds
    /// [`MAX_CODE_LENGTH`].
    pub fn zero(len: usize) -> CodeBlocks {
        assert!(
            len <= MAX_CODE_LENGTH,
            "code length {len} exceeds {MAX_CODE_LENGTH}"
        );
        CodeBlocks {
            blocks: [0; CODE_BLOCKS],
            len,
        }
    }

    /// Wrap a narrow (≤ 64-bit) code.
    pub fn from_u64(code: u64, len: usize) -> CodeBlocks {
        assert!(
            len <= MAX_NARROW_CODE_LENGTH,
            "narrow code length {len} exceeds 64"
        );
        let mut c = CodeBlocks::zero(len);
        c.blocks[0] = code;
        c
    }

    /// Build from explicit blocks (low block first); `blocks` may be
    /// shorter than [`CODE_BLOCKS`].
    pub fn from_blocks(blocks: &[u64], len: usize) -> CodeBlocks {
        let mut c = CodeBlocks::zero(len);
        assert!(blocks.len() <= CODE_BLOCKS, "too many code blocks");
        c.blocks[..blocks.len()].copy_from_slice(blocks);
        c
    }

    /// Code length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the code has zero bits of length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` (panics if `i ≥ len`).
    #[inline]
    pub fn set_bit(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of range for {}-bit code",
            self.len
        );
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i` (panics if `i ≥ len`).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of range for {}-bit code",
            self.len
        );
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The occupied blocks, low block first (`ceil(len / 64)` of them).
    pub fn blocks(&self) -> &[u64] {
        &self.blocks[..self.n_blocks()]
    }

    /// Number of occupied 64-bit blocks.
    pub fn n_blocks(&self) -> usize {
        self.len.div_ceil(64).max(1)
    }

    /// The low 64 bits — the whole code when `len ≤ 64`.
    pub fn low_u64(&self) -> u64 {
        self.blocks[0]
    }
}

/// Errors produced by trainers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// Fewer training rows than the algorithm needs.
    NotEnoughData {
        /// Rows required.
        needed: usize,
        /// Rows provided.
        got: usize,
    },
    /// Requested code length is zero, exceeds [`MAX_CODE_LENGTH`], or exceeds
    /// what the trainer can produce for this dimensionality.
    BadCodeLength {
        /// Requested length.
        requested: usize,
        /// Maximum supported for this configuration.
        max: usize,
    },
    /// Input buffer is not `n × dim`.
    RaggedData,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData { needed, got } => {
                write!(f, "not enough training rows: need {needed}, got {got}")
            }
            TrainError::BadCodeLength { requested, max } => {
                write!(f, "bad code length {requested} (max {max})")
            }
            TrainError::RaggedData => write!(f, "training buffer is not a multiple of dim"),
        }
    }
}

impl std::error::Error for TrainError {}

/// A query's code plus the information QD ranking needs: per-bit flipping
/// costs (for sign-threshold models, `|pᵢ(q)|`).
///
/// Generic over the code representation: `u64` (the default, for codes up
/// to 64 bits), [`CodeBlocks`] on the model side of the wide path, or any
/// `gqr-core` `CodeWord` width once the engine has picked one.
#[derive(Clone, Debug)]
pub struct QueryEncoding<C = u64> {
    /// The query's own bucket code (bit `i` in position `i`).
    pub code: C,
    /// Cost of flipping bit `i` of the code — the paper's `|pᵢ(q)|` term in
    /// Definition 1 (or the codeword-distance delta for K-means hashing).
    /// Always non-negative, `flip_costs.len() == code_length`.
    pub flip_costs: Vec<f64>,
}

/// The width-agnostic query encoding wide models emit.
pub type WideQueryEncoding = QueryEncoding<CodeBlocks>;

/// A trained hashing model: items → `m`-bit codes, queries → codes +
/// flipping costs.
///
/// Implementations must be deterministic and thread-safe; the query engine
/// encodes items and queries from multiple threads.
pub trait HashModel: Send + Sync {
    /// Input dimensionality `d`.
    fn dim(&self) -> usize;

    /// Code length `m` (≤ [`MAX_CODE_LENGTH`]).
    fn code_length(&self) -> usize;

    /// Bucket code of an item (indexing path). Only defined for
    /// `code_length ≤ 64`; wide models panic here and serve
    /// [`encode_wide`](HashModel::encode_wide) instead.
    fn encode(&self, x: &[f32]) -> u64;

    /// Code and per-bit flipping costs of a query (search path). Narrow
    /// (≤ 64-bit) counterpart of
    /// [`encode_query_wide`](HashModel::encode_query_wide).
    fn encode_query(&self, q: &[f32]) -> QueryEncoding;

    /// Width-agnostic bucket code of an item. The default delegates to
    /// [`encode`](HashModel::encode), which is correct for every model with
    /// `code_length ≤ 64`; models supporting longer codes must override.
    fn encode_wide(&self, x: &[f32]) -> CodeBlocks {
        CodeBlocks::from_u64(self.encode(x), self.code_length())
    }

    /// Width-agnostic query encoding. Same default/override contract as
    /// [`encode_wide`](HashModel::encode_wide).
    fn encode_query_wide(&self, q: &[f32]) -> WideQueryEncoding {
        let qe = self.encode_query(q);
        QueryEncoding {
            code: CodeBlocks::from_u64(qe.code, self.code_length()),
            flip_costs: qe.flip_costs,
        }
    }

    /// The spectral norm `σ_max(H)` of the hashing matrix, when the model is
    /// linear (Theorem 1). Used to materialize the Theorem-2 lower bound
    /// `‖o − q‖ ≥ dist(q, b) / (σ_max·√m)` for early stopping; `None` for
    /// non-linear models (SH, KMH).
    fn spectral_norm(&self) -> Option<f64> {
        None
    }

    /// Short algorithm name for reports ("ITQ", "PCAH", …).
    fn name(&self) -> &'static str;

    /// Save hook for binary snapshots: the model's kind tag plus its wire
    /// payload (see [`persist`]). `None` (the default) means the model does
    /// not support persistence, and snapshot writers fail with a typed
    /// error instead of producing a partial file.
    fn snapshot(&self) -> Option<persist::ModelSnapshot> {
        None
    }
}

/// Quantize a projected vector by sign thresholding: bit `i` is 1 iff
/// `p[i] ≥ 0` (the paper's §2.1 quantization rule). Narrow path: panics on
/// projections longer than 64 (use [`sign_code_blocks`]).
#[inline]
pub fn sign_code(projection: &[f64]) -> u64 {
    assert!(
        projection.len() <= MAX_NARROW_CODE_LENGTH,
        "sign_code packs into a u64: {} bits exceed 64 (use sign_code_blocks)",
        projection.len()
    );
    let mut code = 0u64;
    for (i, &p) in projection.iter().enumerate() {
        if p >= 0.0 {
            code |= 1u64 << i;
        }
    }
    code
}

/// Width-agnostic sign thresholding: the same quantization rule as
/// [`sign_code`] for projections up to [`MAX_CODE_LENGTH`] bits.
pub fn sign_code_blocks(projection: &[f64]) -> CodeBlocks {
    let mut code = CodeBlocks::zero(projection.len());
    for (i, &p) in projection.iter().enumerate() {
        if p >= 0.0 {
            code.set_bit(i);
        }
    }
    code
}

/// Shared plumbing for linear models (`LSH`, `PCAH`, `ITQ`): a hashing matrix
/// `W` (`m×d`) and a bias so that `p(q) = W·q + bias`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LinearHasher {
    w: Matrix,
    bias: Vec<f64>,
    spectral_norm: f64,
}

impl LinearHasher {
    /// Build from a hashing matrix and bias; precomputes `σ_max(W)`.
    pub fn new(w: Matrix, bias: Vec<f64>) -> LinearHasher {
        assert_eq!(w.rows(), bias.len(), "one bias per hash function");
        assert!(
            w.rows() <= MAX_CODE_LENGTH,
            "code length exceeds {MAX_CODE_LENGTH}-bit packing"
        );
        let spectral_norm = w.spectral_norm();
        LinearHasher {
            w,
            bias,
            spectral_norm,
        }
    }

    /// Code length `m`.
    #[inline]
    pub fn code_length(&self) -> usize {
        self.w.rows()
    }

    /// Input dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.w.cols()
    }

    /// The hashing matrix `W`.
    pub fn matrix(&self) -> &Matrix {
        &self.w
    }

    /// `σ_max(W)` (Theorem 1's constant `M`).
    pub fn spectral_norm(&self) -> f64 {
        self.spectral_norm
    }

    /// Projected vector `p(x) = W·x + bias`.
    pub fn project(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "input dimensionality mismatch");
        let mut out = self.bias.clone();
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.w.row(r);
            let mut acc = 0.0f64;
            for (&wi, &xi) in row.iter().zip(x) {
                acc += wi * xi as f64;
            }
            *o += acc;
        }
        out
    }

    /// Item encoding: sign-threshold the projection (narrow path; panics
    /// when `code_length > 64` — use [`LinearHasher::encode_wide`]).
    pub fn encode(&self, x: &[f32]) -> u64 {
        sign_code(&self.project(x))
    }

    /// Query encoding: code plus `|pᵢ(q)|` flipping costs (narrow path).
    pub fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        let p = self.project(q);
        let code = sign_code(&p);
        let flip_costs = p.into_iter().map(f64::abs).collect();
        QueryEncoding { code, flip_costs }
    }

    /// Width-agnostic item encoding: works for any `code_length` up to
    /// [`MAX_CODE_LENGTH`].
    pub fn encode_wide(&self, x: &[f32]) -> CodeBlocks {
        sign_code_blocks(&self.project(x))
    }

    /// Width-agnostic query encoding.
    pub fn encode_query_wide(&self, q: &[f32]) -> WideQueryEncoding {
        let p = self.project(q);
        let code = sign_code_blocks(&p);
        let flip_costs = p.into_iter().map(f64::abs).collect();
        QueryEncoding { code, flip_costs }
    }
}

/// Validate an `n×dim` training buffer and code length; returns `n`.
pub(crate) fn check_training_input(
    data: &[f32],
    dim: usize,
    m: usize,
    max_m: usize,
    min_rows: usize,
) -> Result<usize, TrainError> {
    if dim == 0 || !data.len().is_multiple_of(dim) {
        return Err(TrainError::RaggedData);
    }
    if m == 0 || m > max_m.min(MAX_CODE_LENGTH) {
        return Err(TrainError::BadCodeLength {
            requested: m,
            max: max_m.min(MAX_CODE_LENGTH),
        });
    }
    let n = data.len() / dim;
    if n < min_rows {
        return Err(TrainError::NotEnoughData {
            needed: min_rows,
            got: n,
        });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_code_thresholds_at_zero() {
        assert_eq!(sign_code(&[1.0, -1.0, 0.0, -0.5]), 0b0101);
        assert_eq!(sign_code(&[]), 0);
        assert_eq!(sign_code(&[-1.0; 8]), 0);
        assert_eq!(sign_code(&[1.0; 8]), 0xFF);
    }

    #[test]
    fn linear_hasher_projection_and_code() {
        // W = [[1,0],[0,-1]], bias = [0, 0.5]: p(x) = (x0, 0.5 − x1).
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let h = LinearHasher::new(w, vec![0.0, 0.5]);
        let p = h.project(&[2.0, 3.0]);
        assert!((p[0] - 2.0).abs() < 1e-12);
        assert!((p[1] + 2.5).abs() < 1e-12);
        assert_eq!(h.encode(&[2.0, 3.0]), 0b01);
        let qe = h.encode_query(&[2.0, 3.0]);
        assert_eq!(qe.code, 0b01);
        assert!((qe.flip_costs[0] - 2.0).abs() < 1e-12);
        assert!((qe.flip_costs[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_hasher_spectral_norm() {
        let w = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let h = LinearHasher::new(w, vec![0.0, 0.0]);
        assert!((h.spectral_norm() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn check_training_input_errors() {
        assert_eq!(
            check_training_input(&[1.0, 2.0, 3.0], 2, 2, 8, 1),
            Err(TrainError::RaggedData)
        );
        assert_eq!(
            check_training_input(&[1.0, 2.0], 2, 0, 8, 1),
            Err(TrainError::BadCodeLength {
                requested: 0,
                max: 8
            })
        );
        assert_eq!(
            check_training_input(&[1.0, 2.0], 2, 2, 8, 5),
            Err(TrainError::NotEnoughData { needed: 5, got: 1 })
        );
        assert_eq!(
            check_training_input(&[1.0, 2.0, 3.0, 4.0], 2, 2, 8, 2),
            Ok(2)
        );
    }

    #[test]
    fn train_error_display() {
        let e = TrainError::NotEnoughData { needed: 5, got: 1 };
        assert!(e.to_string().contains("need 5"));
        let e = TrainError::BadCodeLength {
            requested: 99,
            max: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(TrainError::RaggedData
            .to_string()
            .contains("multiple of dim"));
    }
}
