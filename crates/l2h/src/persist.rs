//! Binary (de)serialization of trained hash models.
//!
//! Every model the CLI can train (LSH, PCAH, ITQ, SH, KMH, plus the SSH and
//! IsoHash extensions) implements the [`HashModel::snapshot`] save hook,
//! which yields a kind tag and a little-endian payload. [`encode_model`]
//! prefixes the tag; [`decode_model`] dispatches on it and rebuilds the
//! model behind a `Box<dyn HashModel>`. The payload codecs themselves live
//! next to each model (they touch private fields); this module owns the tag
//! registry and the shared [`LinearHasher`] codec.
//!
//! Integrity (CRC, truncation) is enforced by the snapshot container in
//! `gqr-core::persist`; decoders here still validate shapes so a
//! wrong-but-checksummed payload produces a [`WireError`], never a panic.

use crate::{HashModel, LinearHasher, MAX_CODE_LENGTH};
use gqr_linalg::wire::{ByteReader, ByteWriter, WireError};

/// Stable on-disk tag for each model kind.
///
/// Tags are append-only: never reuse or renumber a tag, or old snapshots
/// will decode as the wrong model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ModelKind {
    /// Sign random projections.
    Lsh = 1,
    /// PCA hashing.
    Pcah = 2,
    /// Iterative quantization.
    Itq = 3,
    /// Spectral hashing.
    Sh = 4,
    /// K-means hashing.
    Kmh = 5,
    /// Semi-supervised hashing.
    Ssh = 6,
    /// Isotropic hashing.
    IsoHash = 7,
}

impl ModelKind {
    fn from_tag(tag: u8) -> Option<ModelKind> {
        Some(match tag {
            1 => ModelKind::Lsh,
            2 => ModelKind::Pcah,
            3 => ModelKind::Itq,
            4 => ModelKind::Sh,
            5 => ModelKind::Kmh,
            6 => ModelKind::Ssh,
            7 => ModelKind::IsoHash,
            _ => return None,
        })
    }
}

/// A model's serialized form: its kind tag plus the payload bytes.
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    /// Which decoder understands `bytes`.
    pub kind: ModelKind,
    /// The model payload (little-endian, schema fixed per kind).
    pub bytes: Vec<u8>,
}

/// Serialize a model through its [`HashModel::snapshot`] hook.
///
/// Returns `None` for models that do not support persistence (e.g. test
/// doubles); the snapshot container turns that into a typed error.
pub fn encode_model(model: &dyn HashModel) -> Option<Vec<u8>> {
    let snap = model.snapshot()?;
    let mut w = ByteWriter::new();
    w.put_u8(snap.kind as u8);
    w.put_bytes(&snap.bytes);
    Some(w.into_bytes())
}

/// Rebuild a model from bytes produced by [`encode_model`].
pub fn decode_model(bytes: &[u8]) -> Result<Box<dyn HashModel>, WireError> {
    let mut r = ByteReader::new(bytes);
    let tag = r.get_u8()?;
    let kind = ModelKind::from_tag(tag).ok_or(WireError::Malformed("unknown model kind tag"))?;
    let model: Box<dyn HashModel> = match kind {
        ModelKind::Lsh => Box::new(crate::lsh::Lsh::wire_read(&mut r)?),
        ModelKind::Pcah => Box::new(crate::pcah::Pcah::wire_read(&mut r)?),
        ModelKind::Itq => Box::new(crate::itq::Itq::wire_read(&mut r)?),
        ModelKind::Sh => Box::new(crate::sh::SpectralHashing::wire_read(&mut r)?),
        ModelKind::Kmh => Box::new(crate::kmh::KmeansHashing::wire_read(&mut r)?),
        ModelKind::Ssh => Box::new(crate::ssh::Ssh::wire_read(&mut r)?),
        ModelKind::IsoHash => Box::new(crate::isoh::IsoHash::wire_read(&mut r)?),
    };
    r.expect_end()?;
    Ok(model)
}

/// Serialize a [`LinearHasher`]: `W`, bias, and the precomputed spectral
/// norm (persisted so the loaded model is bit-identical to the saved one —
/// recomputing `σ_max` would re-run an iterative SVD).
pub(crate) fn write_hasher(w: &mut ByteWriter, h: &LinearHasher) {
    w.put_matrix(&h.w);
    w.put_f64_slice(&h.bias);
    w.put_f64(h.spectral_norm);
}

/// Decode a [`LinearHasher`] written by [`write_hasher`].
pub(crate) fn read_hasher(r: &mut ByteReader) -> Result<LinearHasher, WireError> {
    let w = r.get_matrix()?;
    let bias = r.get_f64_vec()?;
    let spectral_norm = r.get_f64()?;
    if w.rows() != bias.len() {
        return Err(WireError::Malformed("hasher bias length != hash functions"));
    }
    if w.rows() == 0 || w.rows() > MAX_CODE_LENGTH {
        return Err(WireError::Malformed("hasher code length out of range"));
    }
    Ok(LinearHasher {
        w,
        bias,
        spectral_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryEncoding;

    struct NoPersist;
    impl HashModel for NoPersist {
        fn dim(&self) -> usize {
            1
        }
        fn code_length(&self) -> usize {
            1
        }
        fn encode(&self, _x: &[f32]) -> u64 {
            0
        }
        fn encode_query(&self, _q: &[f32]) -> QueryEncoding {
            QueryEncoding {
                code: 0,
                flip_costs: vec![0.0],
            }
        }
        fn name(&self) -> &'static str {
            "NoPersist"
        }
    }

    #[test]
    fn models_without_hook_encode_to_none() {
        assert!(encode_model(&NoPersist).is_none());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            decode_model(&[0xEE]),
            Err(WireError::Malformed(_))
        ));
        assert!(decode_model(&[]).is_err());
    }

    #[test]
    fn hasher_roundtrip_is_bit_identical() {
        let w = gqr_linalg::Matrix::from_rows(&[&[0.25, -1.5, 3.0], &[2.0, 0.0, -0.125]]);
        let h = LinearHasher::new(w, vec![0.75, -0.5]);
        let mut buf = ByteWriter::new();
        write_hasher(&mut buf, &h);
        let bytes = buf.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let h2 = read_hasher(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(h.w.as_slice(), h2.w.as_slice());
        assert_eq!(h.bias, h2.bias);
        assert_eq!(h.spectral_norm.to_bits(), h2.spectral_norm.to_bits());
    }

    #[test]
    fn bad_hasher_shapes_are_rejected() {
        let w = gqr_linalg::Matrix::from_rows(&[&[1.0, 0.0]]);
        let mut buf = ByteWriter::new();
        buf.put_matrix(&w);
        buf.put_f64_slice(&[0.0, 1.0]); // two biases for one row
        buf.put_f64(1.0);
        let bytes = buf.into_bytes();
        assert!(read_hasher(&mut ByteReader::new(&bytes)).is_err());
    }
}
