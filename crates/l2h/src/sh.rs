//! Spectral hashing (Weiss, Torralba & Fergus, NIPS 2008).
//!
//! SH assumes a (separable) uniform distribution along the principal
//! directions of the data and uses the analytic eigenfunctions of the 1-D
//! Laplacian on each direction's range: for direction `j` with projected
//! range `[a_j, b_j]`, the `k`-th eigenfunction is
//! `Φ_{k,j}(x) = sin(π/2 + k·π/(b_j − a_j)·(x − a_j))` with eigenvalue
//! proportional to `(k/(b_j − a_j))²`. The `m` candidate (direction, `k`)
//! pairs with the smallest eigenvalues become the hash functions; bits are
//! the signs of the eigenfunction values.
//!
//! SH is *non-linear* (sinusoid of a linear projection), which is exactly
//! why it matters here: it shows QD ranking works beyond linear hashing —
//! the flipping cost of bit `i` is still `|Φ_i(q)|`, the magnitude of the
//! pre-threshold response.

use crate::{check_training_input, sign_code, HashModel, QueryEncoding, TrainError};
use gqr_linalg::Pca;

/// One hash function: the `k`-th sinusoidal eigenfunction along PCA
/// direction `dir`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct EigenFunction {
    /// PCA direction index.
    dir: usize,
    /// Mode number `k ≥ 1`.
    mode: usize,
    /// Range start `a` of the projected data along `dir`.
    a: f64,
    /// Angular frequency `k·π/(b − a)`.
    omega: f64,
}

impl EigenFunction {
    #[inline]
    fn eval(&self, projected: f64) -> f64 {
        (std::f64::consts::FRAC_PI_2 + self.omega * (projected - self.a)).sin()
    }
}

/// A trained spectral-hashing model.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SpectralHashing {
    pca: Pca,
    functions: Vec<EigenFunction>,
}

impl SpectralHashing {
    /// Fit on `n × dim` row-major data, producing `m` hash bits.
    ///
    /// Follows the reference pipeline: PCA to `min(m, dim)` directions,
    /// per-direction range estimation, analytic eigenvalue ranking over all
    /// (direction, mode) candidates, smallest-`m` selected.
    pub fn train(data: &[f32], dim: usize, m: usize) -> Result<SpectralHashing, TrainError> {
        let _n = check_training_input(data, dim, m, crate::MAX_NARROW_CODE_LENGTH, 2)?;
        let n_dirs = m.min(dim);
        let pca = Pca::fit(data, dim, n_dirs);

        // Projected ranges per direction.
        let mut lo = vec![f64::INFINITY; n_dirs];
        let mut hi = vec![f64::NEG_INFINITY; n_dirs];
        for row in data.chunks_exact(dim) {
            let p = pca.project(row);
            for (j, &v) in p.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }

        // Enumerate candidate eigenfunctions: modes 1..=m per direction is
        // always enough to pick the smallest m overall.
        let mut candidates: Vec<(f64, EigenFunction)> = Vec::with_capacity(n_dirs * m);
        for j in 0..n_dirs {
            let span = (hi[j] - lo[j]).max(1e-9);
            for k in 1..=m {
                let omega = k as f64 * std::f64::consts::PI / span;
                // Analytic eigenvalue ∝ ω²; ranking by ω is equivalent.
                candidates.push((
                    omega,
                    EigenFunction {
                        dir: j,
                        mode: k,
                        a: lo[j],
                        omega,
                    },
                ));
            }
        }
        candidates.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (x.1.dir, x.1.mode).cmp(&(y.1.dir, y.1.mode)))
        });
        let functions: Vec<EigenFunction> =
            candidates.into_iter().take(m).map(|(_, f)| f).collect();
        debug_assert_eq!(functions.len(), m);
        Ok(SpectralHashing { pca, functions })
    }

    /// Pre-threshold responses `Φ_i(x)` for all `m` functions.
    pub fn responses(&self, x: &[f32]) -> Vec<f64> {
        let p = self.pca.project(x);
        self.functions.iter().map(|f| f.eval(p[f.dir])).collect()
    }

    /// How many distinct PCA directions are in use.
    pub fn directions_used(&self) -> usize {
        let mut dirs: Vec<usize> = self.functions.iter().map(|f| f.dir).collect();
        dirs.sort_unstable();
        dirs.dedup();
        dirs.len()
    }
}

impl HashModel for SpectralHashing {
    fn dim(&self) -> usize {
        self.pca.dim()
    }

    fn code_length(&self) -> usize {
        self.functions.len()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        sign_code(&self.responses(x))
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        let r = self.responses(q);
        QueryEncoding {
            code: sign_code(&r),
            flip_costs: r.into_iter().map(f64::abs).collect(),
        }
    }

    // Non-linear: no hashing matrix, no Theorem-1 spectral norm.

    fn name(&self) -> &'static str {
        "SH"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        w.put_pca(&self.pca);
        w.put_usize(self.functions.len());
        for f in &self.functions {
            w.put_usize(f.dir);
            w.put_usize(f.mode);
            w.put_f64(f.a);
            w.put_f64(f.omega);
        }
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::Sh,
            bytes: w.into_bytes(),
        })
    }
}

impl SpectralHashing {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<SpectralHashing, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let pca = r.get_pca()?;
        let n = r.get_usize()?;
        if n == 0 || n > crate::MAX_NARROW_CODE_LENGTH {
            return Err(WireError::Malformed("SH function count out of range"));
        }
        let mut functions = Vec::with_capacity(n);
        for _ in 0..n {
            let f = EigenFunction {
                dir: r.get_usize()?,
                mode: r.get_usize()?,
                a: r.get_f64()?,
                omega: r.get_f64()?,
            };
            if f.dir >= pca.k() {
                return Err(WireError::Malformed(
                    "SH eigenfunction direction out of range",
                ));
            }
            functions.push(f);
        }
        Ok(SpectralHashing { pca, functions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Anisotropic data: dim 0 spans [-8, 8], dim 1 spans [-1, 1].
    fn aniso(n: usize) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            data.push(rng.gen_range(-8.0f32..8.0));
            data.push(rng.gen_range(-1.0f32..1.0));
        }
        data
    }

    #[test]
    fn low_modes_on_long_direction_first() {
        // With m = 3 on strongly anisotropic data, the long direction gets
        // multiple modes before the short direction gets any: eigenvalues
        // scale with (k/span)².
        let data = aniso(600);
        let sh = SpectralHashing::train(&data, 2, 3).unwrap();
        let dir0 = sh.functions.iter().filter(|f| f.dir == 0).count();
        assert!(dir0 >= 2, "long direction should dominate, got {dir0} of 3");
    }

    #[test]
    fn mode_one_splits_range_in_half() {
        // Mode 1: Φ = sin(π/2 + π·t/span), positive for t < span/2, negative
        // after — the bit is a midpoint threshold.
        let data = aniso(600);
        let sh = SpectralHashing::train(&data, 2, 1).unwrap();
        let left = sh.encode(&[-7.0, 0.0]);
        let right = sh.encode(&[7.0, 0.0]);
        assert_ne!(left & 1, right & 1);
    }

    #[test]
    fn responses_bounded_by_one() {
        let data = aniso(300);
        let sh = SpectralHashing::train(&data, 2, 4).unwrap();
        for row in data.chunks_exact(2).take(50) {
            for r in sh.responses(row) {
                assert!(r.abs() <= 1.0 + 1e-12);
            }
        }
        let qe = sh.encode_query(&data[..2]);
        assert!(qe
            .flip_costs
            .iter()
            .all(|&c| (0.0..=1.0 + 1e-12).contains(&c)));
    }

    #[test]
    fn code_length_can_exceed_dim() {
        // Unlike PCAH/ITQ, SH reuses directions with higher modes.
        let data = aniso(300);
        let sh = SpectralHashing::train(&data, 2, 6).unwrap();
        assert_eq!(sh.code_length(), 6);
        assert!(sh.directions_used() <= 2);
    }

    #[test]
    fn higher_modes_oscillate_faster() {
        // With 2 bits on 1-D-ish data, bit 0 is mode 1 and bit 1 is mode 2;
        // crossing a quarter of the range must flip the mode-2 bit while the
        // mode-1 bit may persist.
        let data = aniso(600);
        let sh = SpectralHashing::train(&data, 2, 2).unwrap();
        let c1 = sh.encode(&[-7.0, 0.0]);
        let c2 = sh.encode(&[-2.0, 0.0]);
        assert_ne!(c1, c2, "moving a quarter span must change some bit");
    }

    #[test]
    fn no_spectral_norm_for_nonlinear_model() {
        let data = aniso(100);
        let sh = SpectralHashing::train(&data, 2, 2).unwrap();
        assert!(sh.spectral_norm().is_none());
    }
}
