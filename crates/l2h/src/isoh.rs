//! Isotropic hashing (IsoHash, Kong & Li, NIPS 2012).
//!
//! PCAH's weakness is that its bits carry wildly different variances — the
//! first principal direction dominates, so its bit is far more informative
//! than the last. IsoHash learns an orthogonal rotation `Q` of the PCA
//! projections that makes all projected variances *equal*
//! (`diag(Q·Λ·Qᵀ) = ā·I`), using the Lift-and-Projection iteration:
//!
//! * **Lift**: project the current symmetric iterate onto the manifold
//!   `{Q·Λ·Qᵀ}` by replacing its eigenvalues with `Λ`'s (keeping its
//!   eigenvectors).
//! * **Projection**: force the diagonal to the target mean variance `ā`.
//!
//! The result is a linear sign-threshold model, so quantization-distance
//! ranking applies unchanged — one more point for the paper's generality
//! claim, and a model whose flipping costs are better calibrated across
//! bits than PCAH's.

use crate::{check_training_input, HashModel, LinearHasher, QueryEncoding, TrainError};
use gqr_linalg::{random_rotation, symmetric_eigen, Matrix, Pca};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Options for [`IsoHash::train_with`].
#[derive(Clone, Debug)]
pub struct IsoHashOptions {
    /// Lift-and-Projection iterations (converges quickly; 50 is generous).
    pub iterations: usize,
    /// Seed for the random orthogonal start (the iteration has a degenerate
    /// fixed point at the identity, so it must not start there).
    pub seed: u64,
}

impl Default for IsoHashOptions {
    fn default() -> Self {
        IsoHashOptions {
            iterations: 50,
            seed: 0,
        }
    }
}

/// A trained IsoHash model (linear, sign-threshold).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IsoHash {
    hasher: LinearHasher,
    /// Per-bit projected variances after rotation (diagnostic; ideally all
    /// equal to the mean PCA eigenvalue).
    bit_variances: Vec<f64>,
}

impl IsoHash {
    /// Train with default options.
    pub fn train(data: &[f32], dim: usize, m: usize) -> Result<IsoHash, TrainError> {
        Self::train_with(data, dim, m, &IsoHashOptions::default())
    }

    /// Fit PCA to `m` directions, then rotate to isotropic bit variances.
    pub fn train_with(
        data: &[f32],
        dim: usize,
        m: usize,
        opts: &IsoHashOptions,
    ) -> Result<IsoHash, TrainError> {
        check_training_input(data, dim, m, dim, 2)?;
        let pca = Pca::fit(data, dim, m);
        let lambda = &pca.explained_variance;
        let target: f64 = lambda.iter().sum::<f64>() / m as f64;

        // Lift-and-Projection on the m×m symmetric iterate. Start from a
        // *random* rotation of Λ: starting at Λ itself (or any diagonal
        // matrix) is a degenerate fixed point where the eigenvectors stay
        // axis-aligned and no rotation is ever produced.
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x150_4a57);
        let q0 = random_rotation(m, &mut rng);
        let mut t = Matrix::zeros(m, m);
        for a in 0..m {
            for b in 0..m {
                let mut acc = 0.0;
                for r in 0..m {
                    acc += q0[(a, r)] * lambda[r] * q0[(b, r)];
                }
                t[(a, b)] = acc;
            }
        }
        for i in 0..m {
            t[(i, i)] = target;
        }
        let mut q = q0;
        for _ in 0..opts.iterations.max(1) {
            // Lift: T's eigenvectors with Λ's eigenvalues.
            let e = symmetric_eigen(&t);
            q = e.vectors.clone(); // columns: eigenvectors, descending order
            let mut z = Matrix::zeros(m, m);
            for a in 0..m {
                for b in 0..m {
                    let mut acc = 0.0;
                    for r in 0..m {
                        acc += q[(a, r)] * lambda[r] * q[(b, r)];
                    }
                    z[(a, b)] = acc;
                }
            }
            // Projection: pin the diagonal to the target.
            t = z;
            for i in 0..m {
                t[(i, i)] = target;
            }
        }

        // Final rotation from the last lift: rotated projections are
        // y = Q·p(x), whose covariance is the lifted matrix Q·Λ·Qᵀ — the
        // one whose diagonal the projection step drove to ā.
        let w = q.matmul(&pca.components);
        let bias: Vec<f64> = (0..m)
            .map(|r| {
                -w.row(r)
                    .iter()
                    .zip(&pca.mean)
                    .map(|(wi, mu)| wi * mu)
                    .sum::<f64>()
            })
            .collect();
        let hasher = LinearHasher::new(w, bias);

        // Diagnostic variances: diag(Q·Λ·Qᵀ).
        let bit_variances: Vec<f64> = (0..m)
            .map(|i| (0..m).map(|r| q[(i, r)] * q[(i, r)] * lambda[r]).sum())
            .collect();
        Ok(IsoHash {
            hasher,
            bit_variances,
        })
    }

    /// Per-bit projected variances after the rotation (all ≈ equal when the
    /// iteration converged).
    pub fn bit_variances(&self) -> &[f64] {
        &self.bit_variances
    }

    /// The underlying linear hasher.
    pub fn hasher(&self) -> &LinearHasher {
        &self.hasher
    }
}

impl HashModel for IsoHash {
    fn dim(&self) -> usize {
        self.hasher.dim()
    }

    fn code_length(&self) -> usize {
        self.hasher.code_length()
    }

    fn encode(&self, x: &[f32]) -> u64 {
        self.hasher.encode(x)
    }

    fn encode_query(&self, q: &[f32]) -> QueryEncoding {
        self.hasher.encode_query(q)
    }

    fn encode_wide(&self, x: &[f32]) -> crate::CodeBlocks {
        self.hasher.encode_wide(x)
    }

    fn encode_query_wide(&self, q: &[f32]) -> crate::WideQueryEncoding {
        self.hasher.encode_query_wide(q)
    }

    fn spectral_norm(&self) -> Option<f64> {
        Some(self.hasher.spectral_norm())
    }

    fn name(&self) -> &'static str {
        "IsoHash"
    }

    fn snapshot(&self) -> Option<crate::persist::ModelSnapshot> {
        let mut w = gqr_linalg::wire::ByteWriter::new();
        crate::persist::write_hasher(&mut w, &self.hasher);
        w.put_f64_slice(&self.bit_variances);
        Some(crate::persist::ModelSnapshot {
            kind: crate::persist::ModelKind::IsoHash,
            bytes: w.into_bytes(),
        })
    }
}

impl IsoHash {
    /// Decode a snapshot payload (see `crate::persist`).
    pub(crate) fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<IsoHash, gqr_linalg::wire::WireError> {
        Ok(IsoHash {
            hasher: crate::persist::read_hasher(r)?,
            bit_variances: r.get_f64_vec()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Strongly anisotropic data: variances ≈ (100, 9, 1, 0.04).
    fn aniso() -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let scales = [10.0f32, 3.0, 1.0, 0.2];
        let mut data = Vec::new();
        for _ in 0..800 {
            for &s in &scales {
                data.push(s * (rng.gen::<f32>() - 0.5) * 3.46); // var ≈ s²
            }
        }
        data
    }

    fn empirical_bit_variances(model: &IsoHash, data: &[f32], dim: usize) -> Vec<f64> {
        let m = model.code_length();
        let n = data.len() / dim;
        let mut sums = vec![0.0f64; m];
        let mut sq = vec![0.0f64; m];
        for row in data.chunks_exact(dim) {
            let p = model.hasher().project(row);
            for (i, &v) in p.iter().enumerate() {
                sums[i] += v;
                sq[i] += v * v;
            }
        }
        (0..m)
            .map(|i| sq[i] / n as f64 - (sums[i] / n as f64).powi(2))
            .collect()
    }

    #[test]
    fn bit_variances_are_equalized() {
        let data = aniso();
        let iso = IsoHash::train(&data, 4, 4).unwrap();
        let vars = empirical_bit_variances(&iso, &data, 4);
        let mean = vars.iter().sum::<f64>() / 4.0;
        for &v in &vars {
            assert!(
                (v - mean).abs() < 0.15 * mean,
                "bit variances not isotropic: {vars:?}"
            );
        }

        // Contrast: PCAH's variances differ by orders of magnitude here.
        let pcah = crate::pcah::Pcah::train(&data, 4, 4).unwrap();
        let ev = pcah.explained_variance();
        assert!(ev[0] > 20.0 * ev[3], "fixture must be anisotropic: {ev:?}");
    }

    #[test]
    fn rotation_keeps_spectral_norm_of_pca() {
        let data = aniso();
        let iso = IsoHash::train(&data, 4, 3).unwrap();
        assert!((iso.spectral_norm().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reported_variances_match_empirical() {
        let data = aniso();
        let iso = IsoHash::train(&data, 4, 4).unwrap();
        let emp = empirical_bit_variances(&iso, &data, 4);
        for (a, b) in iso.bit_variances().iter().zip(&emp) {
            assert!(
                (a - b).abs() < 0.05 * a.max(1.0),
                "reported {a} vs empirical {b}"
            );
        }
    }

    #[test]
    fn flip_costs_are_comparable_across_bits() {
        // The point of IsoHash for QD ranking: |p_i(q)| magnitudes live on
        // the same scale for every bit, unlike PCAH's.
        let data = aniso();
        let iso = IsoHash::train(&data, 4, 4).unwrap();
        let mut mean_costs = vec![0.0f64; 4];
        for row in data.chunks_exact(4).take(200) {
            for (c, m) in iso
                .encode_query(row)
                .flip_costs
                .iter()
                .zip(mean_costs.iter_mut())
            {
                *m += c;
            }
        }
        let lo = mean_costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mean_costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            hi / lo < 2.0,
            "mean flip costs should be same-scale: {mean_costs:?}"
        );
    }

    #[test]
    fn contract_basics() {
        let data = aniso();
        let iso = IsoHash::train(&data, 4, 2).unwrap();
        assert_eq!(iso.code_length(), 2);
        assert_eq!(iso.dim(), 4);
        let qe = iso.encode_query(&data[..4]);
        assert_eq!(qe.code, iso.encode(&data[..4]));
        assert!(matches!(
            IsoHash::train(&data, 4, 9),
            Err(TrainError::BadCodeLength { .. })
        ));
    }
}
