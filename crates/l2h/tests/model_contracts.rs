//! The `HashModel` contract, enforced across every trainer: the querying
//! layer (GQR in particular) relies on these invariants.

use gqr_l2h::isoh::IsoHash;
use gqr_l2h::itq::Itq;
use gqr_l2h::kmh::KmeansHashing;
use gqr_l2h::lsh::Lsh;
use gqr_l2h::pcah::Pcah;
use gqr_l2h::sh::SpectralHashing;
use gqr_l2h::ssh::{pairs_from_labels, Ssh};
use gqr_l2h::{HashModel, TrainError, MAX_CODE_LENGTH};
use proptest::prelude::*;

fn train_all(data: &[f32], dim: usize, m: usize) -> Vec<Box<dyn HashModel>> {
    let labels: Vec<u32> = (0..data.len() / dim).map(|i| (i % 3) as u32).collect();
    let pairs = pairs_from_labels(&labels, 5);
    vec![
        Box::new(Lsh::train(data, dim, m, 1).unwrap()),
        Box::new(Pcah::train(data, dim, m.min(dim)).unwrap()),
        Box::new(Itq::train(data, dim, m.min(dim)).unwrap()),
        Box::new(SpectralHashing::train(data, dim, m).unwrap()),
        Box::new(KmeansHashing::train(data, dim, m.min(dim * 4)).unwrap()),
        Box::new(Ssh::train(data, dim, m.min(dim), &pairs).unwrap()),
        Box::new(IsoHash::train(data, dim, m.min(dim)).unwrap()),
    ]
}

#[test]
fn out_of_range_code_lengths_are_typed_errors() {
    // The m ≤ 64 ceiling used to be a silent truncation; now every trainer
    // validates against MAX_CODE_LENGTH and reports a typed error.
    let dim = 4;
    let data: Vec<f32> = (0..40 * dim).map(|i| (i % 13) as f32 * 0.3).collect();
    for m in [0usize, MAX_CODE_LENGTH + 1, MAX_CODE_LENGTH * 2] {
        assert!(
            matches!(
                Lsh::train(&data, dim, m, 1),
                Err(TrainError::BadCodeLength { .. })
            ),
            "LSH accepted m = {m}"
        );
        assert!(
            matches!(
                SpectralHashing::train(&data, dim, m),
                Err(TrainError::BadCodeLength { .. })
            ),
            "SH accepted m = {m}"
        );
        assert!(
            matches!(
                Pcah::train(&data, dim, m),
                Err(TrainError::BadCodeLength { .. })
            ),
            "PCAH accepted m = {m}"
        );
    }
}

fn data_strategy() -> impl Strategy<Value = (usize, Vec<f32>)> {
    (3usize..6, 40usize..90)
        .prop_flat_map(|(dim, n)| (Just(dim), prop::collection::vec(-6.0f32..6.0, dim * n)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    #[test]
    fn contract_holds_for_every_model((dim, data) in data_strategy()) {
        let m = 3;
        for model in train_all(&data, dim, m) {
            let name = model.name();
            prop_assert_eq!(model.dim(), dim, "{}", name);
            let eff_m = model.code_length();
            prop_assert!((1..=MAX_CODE_LENGTH).contains(&eff_m), "{}", name);
            let span = if eff_m >= 64 { u64::MAX } else { (1u64 << eff_m) - 1 };

            for row in data.chunks_exact(dim).take(10) {
                // encode is deterministic and within the code span.
                let c1 = model.encode(row);
                let c2 = model.encode(row);
                prop_assert_eq!(c1, c2, "{} determinism", name);
                prop_assert!(c1 <= span, "{} code {} exceeds span", name, c1);

                // encode_wide agrees with encode on the low block and
                // clears every bit past the code length.
                let wide = model.encode_wide(row);
                prop_assert_eq!(wide.blocks()[0], c1, "{} wide/narrow mismatch", name);
                for (i, &b) in wide.blocks().iter().enumerate() {
                    let live = eff_m.saturating_sub(i * 64).min(64);
                    if live < 64 {
                        prop_assert_eq!(
                            b >> live, 0,
                            "{} block {} has bits past code length", name, i
                        );
                    }
                }

                // encode_query agrees with encode and provides one
                // non-negative finite cost per bit.
                let qe = model.encode_query(row);
                prop_assert_eq!(qe.code, c1, "{} query/item code mismatch", name);
                prop_assert_eq!(qe.flip_costs.len(), eff_m, "{}", name);
                for &c in &qe.flip_costs {
                    prop_assert!(c >= 0.0 && c.is_finite(), "{} bad flip cost {c}", name);
                }
                let qw = model.encode_query_wide(row);
                prop_assert_eq!(qw.code.blocks()[0], c1, "{} wide query code", name);
                prop_assert_eq!(qw.flip_costs.len(), eff_m, "{} wide flip costs", name);
            }

            // Spectral norm, when exposed, is positive and finite.
            if let Some(sn) = model.spectral_norm() {
                prop_assert!(sn > 0.0 && sn.is_finite(), "{} spectral norm {sn}", name);
            }
        }
    }

    #[test]
    fn wide_models_honor_the_same_contract((dim, data) in data_strategy(), m in 65usize..=256) {
        // LSH is the one trainer whose code length is dim-independent, so
        // it exercises every width past the old u64 ceiling.
        let model = Lsh::train(&data, dim, m, 7).unwrap();
        prop_assert_eq!(model.code_length(), m);
        for row in data.chunks_exact(dim).take(8) {
            let w1 = model.encode_wide(row);
            let w2 = model.encode_wide(row);
            prop_assert_eq!(w1.blocks(), w2.blocks(), "wide determinism");
            for (i, &b) in w1.blocks().iter().enumerate() {
                let live = m.saturating_sub(i * 64).min(64);
                if live < 64 {
                    prop_assert_eq!(b >> live, 0, "bits past code length in block {}", i);
                }
            }
            let qw = model.encode_query_wide(row);
            prop_assert_eq!(qw.code.blocks(), w1.blocks(), "wide query/item code mismatch");
            prop_assert_eq!(qw.flip_costs.len(), m);
            for &c in &qw.flip_costs {
                prop_assert!(c >= 0.0 && c.is_finite(), "bad wide flip cost {}", c);
            }
        }
    }

    #[test]
    fn similar_items_collide_more_than_distant_ones((dim, data) in data_strategy()) {
        // Weak similarity-preservation smoke check shared by all models:
        // a tiny perturbation of an item must flip no more bits on average
        // than a full reflection of it.
        let m = 4;
        for model in train_all(&data, dim, m) {
            let mut near_flips = 0u32;
            let mut far_flips = 0u32;
            for row in data.chunks_exact(dim).take(12) {
                let base = model.encode(row);
                let near: Vec<f32> = row.iter().map(|&x| x + 1e-4).collect();
                let far: Vec<f32> = row.iter().map(|&x| -x + 0.5).collect();
                near_flips += (base ^ model.encode(&near)).count_ones();
                far_flips += (base ^ model.encode(&far)).count_ones();
            }
            prop_assert!(
                near_flips <= far_flips,
                "{}: near flips {} > far flips {}",
                model.name(),
                near_flips,
                far_flips
            );
        }
    }
}
