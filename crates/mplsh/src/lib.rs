//! Multi-Probe LSH (Lv, Josephson, Wang, Charikar & Li, VLDB 2007).
//!
//! The paper's §5 credits Multi-Probe LSH as the inspiration for GQR and
//! contrasts the two on three points; this crate implements the original so
//! the contrast is testable in code:
//!
//! 1. **Distance definition** — Multi-Probe scores a perturbation by the sum
//!    of *squared* boundary distances of E2LSH's integer quantization, while
//!    QD sums absolute projected magnitudes gated by XOR.
//! 2. **Generality** — the score models similarity only for Gaussian
//!    projections; QD lower-bounds the true distance for any matrix-form
//!    hash (Theorem 2).
//! 3. **Shared structure** — GQR's generation tree is query-independent;
//!    Multi-Probe's perturbation heap works on *sorted boundary distances*
//!    per query and must skip **invalid** sets (both `+1` and `−1` on the
//!    same hash), which cannot happen in GQR's binary code space.
//!
//! The implementation: `L` tables of `M` E2LSH functions
//! `h(x) = ⌊(a·x + b)/W⌋`, bucket keys are the `M`-tuples of integers, and
//! the query-directed probing sequence enumerates perturbation sets in
//! increasing score via the shift/expand min-heap of the original paper.
//!
//! # Example
//!
//! ```
//! use gqr_mplsh::{MpLshIndex, MpLshParams};
//!
//! // 100 points on a line; find the neighbors of one of them.
//! let dim = 2;
//! let data: Vec<f32> = (0..100).flat_map(|i| [i as f32, 0.0]).collect();
//! let params = MpLshParams {
//!     tables: 3,
//!     hashes_per_table: 4,
//!     bucket_width: MpLshIndex::suggest_width(&data, dim),
//!     seed: 1,
//! };
//! let index = MpLshIndex::build(&data, dim, &params);
//! let (neighbors, stats) = index.search(&[50.2, 0.0], &data, 3, 200, 32);
//! assert_eq!(neighbors[0].0, 50, "closest point is #50");
//! assert!(stats.items_evaluated > 0);
//! ```

#![warn(missing_docs)]

pub mod index;
pub mod probing;

pub use index::{MpLshIndex, MpLshParams};
pub use probing::{PerturbationSequence, QueryProjection};
