//! Query-directed perturbation sequences (Lv et al. §4.4).
//!
//! For a query, each E2LSH function contributes two candidate perturbations:
//! `δ = −1` (step to the bucket below, cost = squared distance to the lower
//! boundary) and `δ = +1` (bucket above). Sorting all `2M` candidates by
//! cost and expanding subsets with the *shift*/*expand* operations on a
//! min-heap yields perturbation sets in exactly increasing total score.
//! Sets that use both `+1` and `−1` of the same function are **invalid**
//! and skipped at emission (their children must still be generated).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A query's projection state for one table: integer code plus boundary
/// distances per hash function.
#[derive(Clone, Debug)]
pub struct QueryProjection {
    /// Integer hash values `h_i = ⌊f_i/W⌋`, length `M`.
    pub codes: Vec<i32>,
    /// `(function index, delta, squared boundary distance)` sorted ascending
    /// by distance, length `2M`.
    sorted: Vec<(u32, i8, f64)>,
    /// `partner[j]` = position of the opposite-delta entry of the same
    /// function.
    partner: Vec<u32>,
}

impl QueryProjection {
    /// Build from raw projection values `f_i` and bucket width `W`.
    /// `codes[i] = floor(f_i / w)`; boundary distances derive from the
    /// fractional parts.
    pub fn new(f: &[f64], w: f64) -> QueryProjection {
        assert!(w > 0.0, "bucket width must be positive");
        let m = f.len();
        assert!((1..=32).contains(&m), "1..=32 hash functions per table");
        let mut codes = Vec::with_capacity(m);
        let mut entries: Vec<(u32, i8, f64)> = Vec::with_capacity(2 * m);
        for (i, &fi) in f.iter().enumerate() {
            let h = (fi / w).floor();
            codes.push(h as i32);
            let down = fi - h * w; // distance to lower boundary, in [0, w)
            let up = w - down;
            entries.push((i as u32, -1, down * down));
            entries.push((i as u32, 1, up * up));
        }
        entries.sort_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        let mut partner = vec![0u32; 2 * m];
        for (pos, &(i, d, _)) in entries.iter().enumerate() {
            for (pos2, &(i2, d2, _)) in entries.iter().enumerate() {
                if i2 == i && d2 == -d {
                    partner[pos] = pos2 as u32;
                }
            }
        }
        QueryProjection {
            codes,
            sorted: entries,
            partner,
        }
    }

    /// Number of hash functions `M`.
    pub fn m(&self) -> usize {
        self.codes.len()
    }
}

/// A perturbation set: indices into the sorted candidate list, as a bitmask
/// (≤ 64 candidates).
#[derive(Copy, Clone, Debug)]
struct SetEntry {
    score: f64,
    mask: u64,
    /// Highest set index (the "last" element the shift/expand operate on).
    max_idx: u32,
}

impl PartialEq for SetEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.mask == other.mask
    }
}

impl Eq for SetEntry {}

impl Ord for SetEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on score via reversal; mask tiebreak for determinism.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.mask.cmp(&self.mask))
    }
}

impl PartialOrd for SetEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator over perturbed bucket keys for one table, in non-decreasing
/// perturbation score. The first emission is the query's own (unperturbed)
/// bucket with score 0.
pub struct PerturbationSequence<'a> {
    proj: &'a QueryProjection,
    heap: BinaryHeap<SetEntry>,
    emitted_home: bool,
    /// Scratch for building bucket keys.
    key: Vec<i32>,
    /// Statistics: generated sets that were invalid (the overhead GQR
    /// avoids — see crate docs).
    pub invalid_generated: usize,
}

impl<'a> PerturbationSequence<'a> {
    /// Start a sequence for `proj`.
    pub fn new(proj: &'a QueryProjection) -> PerturbationSequence<'a> {
        let mut heap = BinaryHeap::new();
        if !proj.sorted.is_empty() {
            heap.push(SetEntry {
                score: proj.sorted[0].2,
                mask: 1,
                max_idx: 0,
            });
        }
        PerturbationSequence {
            proj,
            heap,
            emitted_home: false,
            key: Vec::with_capacity(proj.m()),
            invalid_generated: 0,
        }
    }

    /// A set is valid when no function appears with both deltas.
    fn is_valid(&self, mask: u64) -> bool {
        let mut m = mask;
        while m != 0 {
            let j = m.trailing_zeros();
            if mask & (1u64 << self.proj.partner[j as usize]) != 0 {
                return false;
            }
            m &= m - 1;
        }
        true
    }

    /// Materialize the bucket key for a perturbation mask.
    fn key_for(&mut self, mask: u64) -> &[i32] {
        self.key.clear();
        self.key.extend_from_slice(&self.proj.codes);
        let mut m = mask;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            let (func, delta, _) = self.proj.sorted[j];
            self.key[func as usize] += delta as i32;
            m &= m - 1;
        }
        &self.key
    }

    /// Next `(bucket key, score)`; `None` when the candidate space is
    /// exhausted. Note Multi-Probe only reaches buckets within ±1 per hash
    /// function — unlike GQR it cannot enumerate the whole table.
    pub fn next_bucket(&mut self) -> Option<(Vec<i32>, f64)> {
        if !self.emitted_home {
            self.emitted_home = true;
            return Some((self.proj.codes.clone(), 0.0));
        }
        let n = self.proj.sorted.len();
        loop {
            let top = self.heap.pop()?;
            let j = top.max_idx as usize;
            if j + 1 < n {
                let step = self.proj.sorted[j + 1].2;
                // Expand: add candidate j+1.
                self.heap.push(SetEntry {
                    score: top.score + step,
                    mask: top.mask | (1u64 << (j + 1)),
                    max_idx: top.max_idx + 1,
                });
                // Shift: move candidate j to j+1.
                self.heap.push(SetEntry {
                    score: top.score + step - self.proj.sorted[j].2,
                    mask: (top.mask & !(1u64 << j)) | (1u64 << (j + 1)),
                    max_idx: top.max_idx + 1,
                });
            }
            if self.is_valid(top.mask) {
                let score = top.score;
                let key = self.key_for(top.mask).to_vec();
                return Some((key, score));
            }
            self.invalid_generated += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(f: &[f64], w: f64) -> QueryProjection {
        QueryProjection::new(f, w)
    }

    #[test]
    fn codes_are_floor_quantization() {
        let p = proj(&[0.4, 1.9, -0.3], 1.0);
        assert_eq!(p.codes, vec![0, 1, -1]);
    }

    #[test]
    fn home_bucket_first_then_nondecreasing_scores() {
        let p = proj(&[0.4, 1.9, -0.3], 1.0);
        let mut seq = PerturbationSequence::new(&p);
        let (home, s0) = seq.next_bucket().unwrap();
        assert_eq!(home, p.codes);
        assert_eq!(s0, 0.0);
        let mut last = 0.0;
        let mut count = 0;
        while let Some((_, s)) = seq.next_bucket() {
            assert!(s >= last - 1e-12, "scores must not decrease");
            last = s;
            count += 1;
            if count > 200 {
                break;
            }
        }
        assert!(count > 5, "several perturbations reachable");
    }

    #[test]
    fn cheapest_perturbation_flips_nearest_boundary() {
        // f = 1.95 with W = 1: distance up = 0.05 → first perturbation is +1
        // on that function.
        let p = proj(&[0.5, 1.95], 1.0);
        let mut seq = PerturbationSequence::new(&p);
        seq.next_bucket(); // home
        let (key, score) = seq.next_bucket().unwrap();
        assert_eq!(key, vec![0, 2], "bump the function closest to a boundary");
        assert!((score - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn no_invalid_sets_are_emitted_and_each_key_once_within_horizon() {
        let p = proj(&[0.3, 0.6, 1.2, -0.9], 1.0);
        let mut seq = PerturbationSequence::new(&p);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let Some((key, _)) = seq.next_bucket() else {
                break;
            };
            // Emitted keys differ from home by at most ±1 per coordinate.
            for (k, h) in key.iter().zip(&p.codes) {
                assert!((k - h).abs() <= 1);
            }
            assert!(seen.insert(key.clone()), "duplicate key {key:?}");
        }
        assert!(
            seq.invalid_generated > 0,
            "the ±1-conflict sets the paper mentions must occur and be skipped"
        );
    }

    #[test]
    fn exhausts_at_3_pow_m_keys() {
        // With M functions the reachable keys are exactly 3^M (δ ∈ {−1,0,1}).
        let p = proj(&[0.25, 0.75], 1.0);
        let mut seq = PerturbationSequence::new(&p);
        let mut count = 0;
        while seq.next_bucket().is_some() {
            count += 1;
            assert!(count <= 9, "must terminate at 3^2 keys");
        }
        assert_eq!(count, 9);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_rejected() {
        let _ = proj(&[1.0], 0.0);
    }
}
