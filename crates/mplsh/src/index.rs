//! The Multi-Probe LSH index: `L` E2LSH tables with query-directed probing.

use crate::probing::{PerturbationSequence, QueryProjection};
use gqr_linalg::kernels::ScoreBlock;
use gqr_linalg::qr::gaussian;
use gqr_linalg::vecops::{sq_dist_f32, Metric};
use gqr_linalg::Matrix;
use gqr_metrics::{MetricsRegistry, Phase, PhaseSpans, SpanId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct MpLshParams {
    /// Number of hash tables `L`.
    pub tables: usize,
    /// E2LSH functions per table `M` (≤ 32).
    pub hashes_per_table: usize,
    /// Bucket width `W` of the quantizer `⌊(a·x + b)/W⌋`. Scale to the
    /// data's typical distances; [`MpLshIndex::suggest_width`] estimates one.
    pub bucket_width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MpLshParams {
    fn default() -> Self {
        MpLshParams {
            tables: 4,
            hashes_per_table: 8,
            bucket_width: 1.0,
            seed: 0,
        }
    }
}

/// One E2LSH table.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Table {
    /// Projection matrix (`M×d`), iid standard normal rows.
    a: Matrix,
    /// Offsets `b_i ~ U[0, W)`.
    b: Vec<f64>,
    /// Integer-key buckets.
    buckets: HashMap<Vec<i32>, Vec<u32>>,
}

impl Table {
    fn project(&self, x: &[f32], w: f64) -> QueryProjection {
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let mut f = self.a.matvec(&xf);
        for (fi, bi) in f.iter_mut().zip(&self.b) {
            *fi += bi;
        }
        QueryProjection::new(&f, w)
    }
}

/// A built Multi-Probe LSH index.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MpLshIndex {
    dim: usize,
    w: f64,
    tables: Vec<Table>,
    n_items: usize,
}

/// Search statistics (the de-duplication and invalid-set overhead GQR's
/// design avoids).
#[derive(Clone, Copy, Debug, Default)]
pub struct MpLshStats {
    /// Bucket lookups across tables.
    pub buckets_probed: usize,
    /// Lookups that found no bucket.
    pub empty_buckets: usize,
    /// Unique items evaluated.
    pub items_evaluated: usize,
    /// Candidates skipped as duplicates across tables.
    pub duplicates_skipped: usize,
    /// Invalid perturbation sets generated and discarded.
    pub invalid_sets: usize,
}

impl MpLshIndex {
    /// Build the index over row-major data.
    pub fn build(data: &[f32], dim: usize, params: &MpLshParams) -> MpLshIndex {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "data must be n×dim"
        );
        assert!(params.tables >= 1, "need at least one table");
        assert!(
            (1..=32).contains(&params.hashes_per_table),
            "1..=32 hash functions per table"
        );
        assert!(params.bucket_width > 0.0, "bucket width must be positive");
        let n = data.len() / dim;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x6d70_6c73);
        let mut tables = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let mut a = Matrix::zeros(params.hashes_per_table, dim);
            for r in 0..params.hashes_per_table {
                for c in 0..dim {
                    a[(r, c)] = gaussian(&mut rng);
                }
            }
            let b: Vec<f64> = (0..params.hashes_per_table)
                .map(|_| rng.gen::<f64>() * params.bucket_width)
                .collect();
            let mut table = Table {
                a,
                b,
                buckets: HashMap::new(),
            };
            for (i, row) in data.chunks_exact(dim).enumerate() {
                let key = table.project(row, params.bucket_width).codes;
                table.buckets.entry(key).or_default().push(i as u32);
            }
            tables.push(table);
        }
        MpLshIndex {
            dim,
            w: params.bucket_width,
            tables,
            n_items: n,
        }
    }

    /// Estimate a bucket width from the data: the mean distance between a
    /// sample of consecutive rows, divided by 2 (a common E2LSH heuristic
    /// starting point).
    pub fn suggest_width(data: &[f32], dim: usize) -> f64 {
        let n = data.len() / dim;
        if n < 2 {
            return 1.0;
        }
        let samples = n.min(500);
        let mut acc = 0.0f64;
        for i in 0..samples - 1 {
            let a = &data[i * dim..(i + 1) * dim];
            let b = &data[(i + 1) * dim..(i + 2) * dim];
            acc += (sq_dist_f32(a, b) as f64).sqrt();
        }
        (acc / (samples - 1) as f64 / 2.0).max(1e-6)
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Indexed item count.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total occupied buckets across tables.
    pub fn n_buckets(&self) -> usize {
        self.tables.iter().map(|t| t.buckets.len()).sum()
    }

    /// Serialize the index (projections, offsets, buckets) for a binary
    /// snapshot (see `gqr-core::persist`). Buckets are written sorted by
    /// key so the byte stream is deterministic; per-bucket id order is
    /// preserved, so a reloaded index returns bit-identical results.
    pub fn wire_write(&self, w: &mut gqr_linalg::wire::ByteWriter) {
        w.put_usize(self.dim);
        w.put_f64(self.w);
        w.put_usize(self.n_items);
        w.put_usize(self.tables.len());
        for t in &self.tables {
            w.put_matrix(&t.a);
            w.put_f64_slice(&t.b);
            let mut keys: Vec<&Vec<i32>> = t.buckets.keys().collect();
            keys.sort_unstable();
            w.put_usize(keys.len());
            for key in keys {
                w.put_i32_slice(key);
                w.put_u32_slice(&t.buckets[key]);
            }
        }
    }

    /// Decode an index written by [`MpLshIndex::wire_write`].
    pub fn wire_read(
        r: &mut gqr_linalg::wire::ByteReader<'_>,
    ) -> Result<MpLshIndex, gqr_linalg::wire::WireError> {
        use gqr_linalg::wire::WireError;
        let dim = r.get_usize()?;
        let w = r.get_f64()?;
        let n_items = r.get_usize()?;
        let n_tables = r.get_usize()?;
        if dim == 0 || n_tables == 0 {
            return Err(WireError::Malformed("MPLSH shape out of range"));
        }
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let a = r.get_matrix()?;
            let b = r.get_f64_vec()?;
            if a.cols() != dim || a.rows() != b.len() || a.rows() == 0 {
                return Err(WireError::Malformed("MPLSH table shape mismatch"));
            }
            let n_buckets = r.get_usize()?;
            let mut buckets = HashMap::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                let key = r.get_i32_vec()?;
                if key.len() != a.rows() {
                    return Err(WireError::Malformed("MPLSH bucket key length mismatch"));
                }
                let ids = r.get_u32_vec()?;
                if buckets.insert(key, ids).is_some() {
                    return Err(WireError::Malformed("MPLSH duplicate bucket key"));
                }
            }
            tables.push(Table { a, b, buckets });
        }
        Ok(MpLshIndex {
            dim,
            w,
            tables,
            n_items,
        })
    }

    /// k-NN search: probe up to `probes_per_table` buckets per table in
    /// perturbation-score order (merged across tables by score), evaluate
    /// unique candidates exactly, return the top `k`.
    pub fn search(
        &self,
        query: &[f32],
        data: &[f32],
        k: usize,
        n_candidates: usize,
        probes_per_table: usize,
    ) -> (Vec<(u32, f32)>, MpLshStats) {
        self.search_metered(
            query,
            data,
            k,
            n_candidates,
            probes_per_table,
            &MetricsRegistry::disabled(),
        )
    }

    /// [`MpLshIndex::search`] with query-path observability: with an enabled
    /// registry, phase spans (`hash_query` = per-table projections,
    /// `probe_generate` = perturbation-sequence expansion and cross-table
    /// merge, `bucket_lookup`, `evaluate`, `rerank`) and per-query totals
    /// are recorded under the `gqr_mplsh_*` metric family with
    /// `strategy="MPLSH"`. When the registry has tracing enabled
    /// ([`MetricsRegistry::enable_tracing`]), sampled queries additionally
    /// capture a span tree named `mplsh` with a per-probe trajectory (the
    /// perturbation score standing in for QD).
    pub fn search_metered(
        &self,
        query: &[f32],
        data: &[f32],
        k: usize,
        n_candidates: usize,
        probes_per_table: usize,
        metrics: &MetricsRegistry,
    ) -> (Vec<(u32, f32)>, MpLshStats) {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let start = Instant::now();
        let trace = metrics.trace_begin("mplsh", false);
        let troot = SpanId::ROOT;
        let mut spans = PhaseSpans::new(metrics);
        let mut stats = MpLshStats::default();
        let t0 = spans.begin();
        let ts = trace.begin_opt(troot, Phase::HashQuery.as_str(), t0);
        let projections: Vec<QueryProjection> = self
            .tables
            .iter()
            .map(|t| t.project(query, self.w))
            .collect();
        spans.end(Phase::HashQuery, t0);
        trace.end(ts);
        let t0 = spans.begin();
        let ts = trace.begin_opt(troot, Phase::ProbeGenerate.as_str(), t0);
        let mut sequences: Vec<PerturbationSequence<'_>> =
            projections.iter().map(PerturbationSequence::new).collect();
        // Pending next emission per table: (score, key).
        let mut pending: Vec<Option<(Vec<i32>, f64)>> =
            sequences.iter_mut().map(|s| s.next_bucket()).collect();
        spans.end(Phase::ProbeGenerate, t0);
        trace.end(ts);
        let mut probes_left: Vec<usize> = vec![probes_per_table; self.tables.len()];

        let mut visited = vec![false; self.n_items];
        let mut best: Vec<(u32, f32)> = Vec::new();
        let mut scratch = ScoreBlock::new(self.dim);

        while stats.items_evaluated < n_candidates {
            // Table with the lowest pending score.
            let tg = spans.begin();
            let mut pick: Option<(usize, f64)> = None;
            for (t, p) in pending.iter().enumerate() {
                if probes_left[t] == 0 {
                    continue;
                }
                if let Some((_, s)) = p {
                    if pick.is_none_or(|(_, bs)| *s < bs) {
                        pick = Some((t, *s));
                    }
                }
            }
            let picked = pick.map(|(t, _)| {
                let (key, _) = pending[t].take().expect("picked pending entry");
                probes_left[t] -= 1;
                pending[t] = if probes_left[t] > 0 {
                    sequences[t].next_bucket()
                } else {
                    None
                };
                (t, key)
            });
            spans.end(Phase::ProbeGenerate, tg);
            let Some((t, key)) = picked else { break };

            let step_qd = pick.map_or(-1.0, |(_, s)| s);
            let bucket_rank = stats.buckets_probed as u32;
            stats.buckets_probed += 1;
            let tl = spans.begin();
            let ts = trace.begin_opt(troot, Phase::BucketLookup.as_str(), tl);
            let bucket = self.tables[t].buckets.get(&key);
            spans.end(Phase::BucketLookup, tl);
            trace.end(ts);
            let Some(items) = bucket else {
                stats.empty_buckets += 1;
                if trace.is_sampled() {
                    trace.qd_step(troot, bucket_rank, step_qd, 0, 0);
                }
                continue;
            };
            let evaluated_before = stats.items_evaluated;
            let te = spans.begin();
            let ts = trace.begin_opt(troot, Phase::Evaluate.as_str(), te);
            for &id in items {
                let seen = &mut visited[id as usize];
                if *seen {
                    stats.duplicates_skipped += 1;
                    continue;
                }
                *seen = true;
                if scratch.is_full() {
                    stats.items_evaluated +=
                        scratch.flush(query, Metric::SquaredEuclidean, |id, d| best.push((id, d)));
                }
                let row = &data[id as usize * self.dim..(id as usize + 1) * self.dim];
                scratch.push(id, row);
            }
            stats.items_evaluated +=
                scratch.flush(query, Metric::SquaredEuclidean, |id, d| best.push((id, d)));
            spans.end(Phase::Evaluate, te);
            trace.end(ts);
            if trace.is_sampled() {
                let kept = (stats.items_evaluated - evaluated_before) as u32;
                trace.qd_step(troot, bucket_rank, step_qd, items.len() as u32, kept);
            }
        }
        stats.invalid_sets = sequences.iter().map(|s| s.invalid_generated).sum();
        let tr = spans.begin();
        let ts = trace.begin_opt(troot, Phase::Rerank.as_str(), tr);
        best.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        best.truncate(k);
        spans.end(Phase::Rerank, tr);
        trace.end(ts);
        spans.flush(metrics, "gqr_mplsh", "MPLSH", start.elapsed());
        metrics.trace_finish(trace, false);
        (best, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqr_dataset::{brute_force_knn, DatasetSpec, Scale};

    fn fixture() -> (gqr_dataset::Dataset, MpLshIndex) {
        let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(91);
        let w = 1.5 * MpLshIndex::suggest_width(ds.as_slice(), ds.dim());
        let idx = MpLshIndex::build(
            ds.as_slice(),
            ds.dim(),
            &MpLshParams {
                tables: 6,
                hashes_per_table: 6,
                bucket_width: w,
                seed: 3,
            },
        );
        (ds, idx)
    }

    #[test]
    fn finds_most_true_neighbors_with_moderate_probing() {
        let (ds, idx) = fixture();
        let queries = ds.sample_queries(20, 5);
        let truth = brute_force_knn(&ds, &queries, 10, 2);
        let mut found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let (res, _) = idx.search(q, ds.as_slice(), 10, 600, 128);
            found += res.iter().filter(|(id, _)| t.contains(id)).count();
        }
        let recall = found as f64 / (10 * queries.len()) as f64;
        assert!(recall > 0.5, "multi-probe recall too low: {recall}");
    }

    #[test]
    fn more_probes_do_not_hurt_recall() {
        let (ds, idx) = fixture();
        let queries = ds.sample_queries(10, 6);
        let truth = brute_force_knn(&ds, &queries, 5, 2);
        let recall_at = |probes: usize| {
            let mut found = 0usize;
            for (q, t) in queries.iter().zip(&truth) {
                let (res, _) = idx.search(q, ds.as_slice(), 5, usize::MAX, probes);
                found += res.iter().filter(|(id, _)| t.contains(id)).count();
            }
            found as f64 / (5 * queries.len()) as f64
        };
        let few = recall_at(2);
        let many = recall_at(128);
        assert!(
            many >= few,
            "recall with 128 probes ({many}) < with 2 ({few})"
        );
    }

    #[test]
    fn cannot_guarantee_full_enumeration() {
        // The paper's §7 point: perturbations only reach ±1 per function, so
        // some items stay unreachable no matter how many probes — unlike GQR.
        let (ds, idx) = fixture();
        let q = ds.sample_queries(1, 7).remove(0);
        let (_, stats) = idx.search(&q, ds.as_slice(), 5, usize::MAX, usize::MAX);
        assert!(
            stats.items_evaluated < ds.n(),
            "multi-probe should not reach every item ({}/{})",
            stats.items_evaluated,
            ds.n()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let (ds, idx) = fixture();
        let q = ds.sample_queries(1, 8).remove(0);
        let (_, stats) = idx.search(&q, ds.as_slice(), 5, 500, 32);
        assert!(stats.buckets_probed <= 32 * idx.n_tables());
        assert!(stats.items_evaluated <= ds.n());
        assert!(stats.empty_buckets <= stats.buckets_probed);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(13);
        let params = MpLshParams {
            tables: 2,
            hashes_per_table: 6,
            bucket_width: 2.0,
            seed: 9,
        };
        let a = MpLshIndex::build(ds.as_slice(), ds.dim(), &params);
        let b = MpLshIndex::build(ds.as_slice(), ds.dim(), &params);
        let q = ds.sample_queries(1, 1).remove(0);
        let (ra, _) = a.search(&q, ds.as_slice(), 5, 200, 16);
        let (rb, _) = b.search(&q, ds.as_slice(), 5, 200, 16);
        assert_eq!(ra, rb);
    }

    #[test]
    fn metered_search_matches_plain_and_records_spans() {
        let (ds, idx) = fixture();
        let q = ds.sample_queries(1, 5).remove(0);
        let m = MetricsRegistry::enabled();
        let (metered, _) = idx.search_metered(&q, ds.as_slice(), 5, 200, 16, &m);
        let (plain, _) = idx.search(&q, ds.as_slice(), 5, 200, 16);
        assert_eq!(metered, plain, "metering must not change results");
        assert_eq!(
            m.counter_value("gqr_mplsh_queries_total{strategy=\"MPLSH\"}"),
            Some(1)
        );
        let total = m
            .histogram("gqr_mplsh_total_ns{strategy=\"MPLSH\"}")
            .unwrap();
        assert_eq!(total.count(), 1);
    }

    #[test]
    fn suggest_width_positive_and_scales() {
        let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(14);
        let w = MpLshIndex::suggest_width(ds.as_slice(), ds.dim());
        assert!(w > 0.0);
        let doubled: Vec<f32> = ds.as_slice().iter().map(|&x| 2.0 * x).collect();
        let w2 = MpLshIndex::suggest_width(&doubled, ds.dim());
        assert!((w2 / w - 2.0).abs() < 1e-3, "width scales with the data");
    }
}
