//! Property tests for the Multi-Probe perturbation sequence: compared
//! against brute-force enumeration of all `3^M` perturbed keys.

use gqr_mplsh::{PerturbationSequence, QueryProjection};
use proptest::prelude::*;

/// Brute force: every delta vector in {−1, 0, 1}^M with its score.
fn brute_force(f: &[f64], w: f64) -> Vec<(Vec<i32>, f64)> {
    let m = f.len();
    let codes: Vec<i32> = f.iter().map(|&fi| (fi / w).floor() as i32).collect();
    let down: Vec<f64> = f
        .iter()
        .zip(&codes)
        .map(|(&fi, &h)| {
            let d = fi - h as f64 * w;
            d * d
        })
        .collect();
    let up: Vec<f64> = f
        .iter()
        .zip(&codes)
        .map(|(&fi, &h)| {
            let d = w - (fi - h as f64 * w);
            d * d
        })
        .collect();

    let mut out = Vec::new();
    for combo in 0..3usize.pow(m as u32) {
        let mut c = combo;
        let mut key = codes.clone();
        let mut score = 0.0;
        for i in 0..m {
            match c % 3 {
                0 => {}
                1 => {
                    key[i] -= 1;
                    score += down[i];
                }
                _ => {
                    key[i] += 1;
                    score += up[i];
                }
            }
            c /= 3;
        }
        out.push((key, score));
    }
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn sequence_matches_brute_force_scores(
        f in prop::collection::vec(-20.0f64..20.0, 1..5),
        w in 0.3f64..4.0,
    ) {
        let proj = QueryProjection::new(&f, w);
        let mut seq = PerturbationSequence::new(&proj);
        let expect = brute_force(&f, w);
        let mut got = Vec::new();
        while let Some((key, score)) = seq.next_bucket() {
            got.push((key, score));
        }
        prop_assert_eq!(got.len(), expect.len(), "must emit exactly 3^M keys");
        for ((_, gs), (_, es)) in got.iter().zip(&expect) {
            prop_assert!((gs - es).abs() < 1e-9, "score sequence diverges: {gs} vs {es}");
        }
        // Every key appears exactly once.
        let keys: std::collections::HashSet<Vec<i32>> = got.iter().map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(keys.len(), got.len());
    }

    #[test]
    fn scores_never_decrease(
        f in prop::collection::vec(-50.0f64..50.0, 1..7),
        w in 0.5f64..3.0,
    ) {
        let proj = QueryProjection::new(&f, w);
        let mut seq = PerturbationSequence::new(&proj);
        let mut last = -1.0f64;
        let mut count = 0;
        while let Some((_, s)) = seq.next_bucket() {
            prop_assert!(s >= last - 1e-9);
            last = s;
            count += 1;
            if count > 500 {
                break;
            }
        }
    }

    #[test]
    fn perturbed_keys_stay_within_one_step(
        f in prop::collection::vec(-9.0f64..9.0, 2..6),
        w in 0.5f64..2.0,
    ) {
        let proj = QueryProjection::new(&f, w);
        let home = proj.codes.clone();
        let mut seq = PerturbationSequence::new(&proj);
        for _ in 0..64 {
            let Some((key, _)) = seq.next_bucket() else { break };
            for (k, h) in key.iter().zip(&home) {
                prop_assert!((k - h).abs() <= 1);
            }
        }
    }
}
