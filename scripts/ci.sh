#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings denied), and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> ci.sh: all green"
