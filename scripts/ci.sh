#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings denied), and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> kernel suites under GQR_FORCE_SCALAR=1"
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-linalg --test kernel_equivalence
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-eval --test exact_oracle
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-core --test blocked_eval

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> snapshot corruption + round-trip suites"
cargo test -q --test snapshot_corruption
cargo test -q --test snapshot_roundtrip

echo "==> recall SLA conformance suite"
cargo test -q -p gqr-core --test recall_sla

echo "==> filtered-search suites (planner equivalence, zero false negatives, metric names)"
cargo test -q -p gqr-core --test predicate_equivalence
cargo test -q -p gqr-core --test filtered_search
cargo test -q -p gqr-core --test filter_metrics

echo "==> mutation stress (bounded)"
GQR_STRESS_ITERS=800 cargo test -q -p gqr-core --test live_stress

echo "==> trace suites (span trees, early-return flushes, Chrome export)"
cargo test -q -p gqr-core --test trace_paths
cargo test -q --test trace

echo "==> trace overhead bench (smoke, gated at 2%)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench trace_overhead
grep -q '"gate_pass": true' results/BENCH_trace.json \
    || { echo "trace overhead gate FAILED (results/BENCH_trace.json)"; exit 1; }

echo "==> snapshot save/load/query smoke (CLI)"
SNAPDIR="$(mktemp -d)"
trap 'rm -rf "$SNAPDIR"' EXIT
cargo run -q --release --bin gqr -- generate --preset cifar60k --scale smoke \
    --out "$SNAPDIR/vecs.fvecs" --seed 5
cargo run -q --release --bin gqr -- save-index --data "$SNAPDIR/vecs.fvecs" \
    --snapshot "$SNAPDIR/index.gqr" --algo pcah --bits 8 --mih-blocks 2
cargo run -q --release --bin gqr -- load-index --snapshot "$SNAPDIR/index.gqr" \
    --row 3 --k 4 --strategy gqr
cargo run -q --release --bin gqr -- load-index --snapshot "$SNAPDIR/index.gqr" \
    --queries 10 --k 5 --strategy mih

echo "==> live mutation smoke (CLI insert/delete on a snapshot)"
VEC="$(printf '0.5,%.0s' $(seq 1 16))"  # smoke-scale cifar60k is 16-dim
cargo run -q --release --bin gqr -- insert --snapshot "$SNAPDIR/index.gqr" \
    --vector "${VEC%,}"
cargo run -q --release --bin gqr -- delete --snapshot "$SNAPDIR/index.gqr" --id 3
cargo run -q --release --bin gqr -- load-index --snapshot "$SNAPDIR/index.gqr" \
    --queries 10 --k 5 --strategy gqr

echo "==> HTTP serve smoke (CLI: serve + loadgen + /metrics + SIGTERM drain)"
./target/release/gqr serve --snapshot "$SNAPDIR/index.gqr" \
    --addr 127.0.0.1:0 --addr-file "$SNAPDIR/addr" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SNAPDIR/addr" ] && break; sleep 0.1; done
[ -s "$SNAPDIR/addr" ] || { echo "serve smoke FAILED: server never bound"; exit 1; }
ADDR="$(cat "$SNAPDIR/addr")"
./target/release/gqr loadgen --addr "$ADDR" --dim 16 \
    --qps 200 --duration-s 1 --out "$SNAPDIR/loadgen.json"
grep -q '"errors":0' "$SNAPDIR/loadgen.json" \
    || { echo "serve smoke FAILED: loadgen saw errors ($SNAPDIR/loadgen.json)"; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q 'gqr_http_requests_total' \
    || { echo "serve smoke FAILED: /metrics missing serving counters"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve smoke FAILED: drain exited non-zero"; exit 1; }

echo "==> HTTP serving bench (smoke, admission-control gate)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench http_serving
grep -q '"gate_pass":true' results/BENCH_serving.json \
    || { echo "serving gate FAILED (results/BENCH_serving.json)"; exit 1; }

echo "==> snapshot cold-start bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench snapshot

echo "==> mutation bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench mutation

echo "==> serving bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench serving

echo "==> kernel bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench distance

echo "==> recall controller bench (smoke, 25% probe-reduction gate at recall@10 >= 0.9)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench recall
grep -q '"gate_pass": true' results/BENCH_recall.json \
    || { echo "recall controller gate FAILED (results/BENCH_recall.json)"; exit 1; }
GQR_FORCE_SCALAR=1 GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench recall
grep -q '"gate_pass": true' results/BENCH_recall.json \
    || { echo "recall controller gate FAILED under GQR_FORCE_SCALAR (results/BENCH_recall.json)"; exit 1; }

echo "==> filtered-search bench (smoke, 5x planner gate at selectivity <= 0.01)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench filtered
grep -q '"gate_pass": true' results/BENCH_filtered.json \
    || { echo "filtered planner gate FAILED (results/BENCH_filtered.json)"; exit 1; }

echo "==> popcount bench (smoke, 1.5x SIMD gate at m=128)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench hamming
grep -q '"gate_pass": true' results/BENCH_hamming.json \
    || { echo "popcount gate FAILED (results/BENCH_hamming.json)"; exit 1; }
GQR_FORCE_SCALAR=1 GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench hamming
grep -q '"gate_pass": true' results/BENCH_hamming.json \
    || { echo "popcount gate FAILED under GQR_FORCE_SCALAR (results/BENCH_hamming.json)"; exit 1; }

echo "==> ci.sh: all green"
