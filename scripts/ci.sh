#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings denied), and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> kernel suites under GQR_FORCE_SCALAR=1"
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-linalg --test kernel_equivalence
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-eval --test exact_oracle
GQR_FORCE_SCALAR=1 cargo test -q -p gqr-core --test blocked_eval

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> serving bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench serving

echo "==> kernel bench (smoke)"
GQR_BENCH_SMOKE=1 cargo bench -q -p gqr-bench --bench distance

echo "==> ci.sh: all green"
