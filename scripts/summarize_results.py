#!/usr/bin/env python3
"""Render EXPERIMENTS.md's measured sections from results/*.csv.

Run after `run_all`:
    python3 scripts/summarize_results.py results >> EXPERIMENTS.md
(The repo's EXPERIMENTS.md was produced exactly this way.)
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def read(path):
    with open(path) as fh:
        return list(csv.DictReader(fh))


def tar_table(rows, datasets=None):
    """Time-at-recall rows -> {dataset: {method: {recall: time}}}."""
    out = defaultdict(lambda: defaultdict(dict))
    for r in rows:
        if datasets and r["dataset"] not in datasets:
            continue
        t = r["total_time_s"]
        out[r["dataset"]][r["method"]][r["recall"]] = (
            None if t == "unreached" else float(t)
        )
    return out


def speedup_at(tar, dataset, base, other, recall="0.90"):
    b = tar[dataset].get(base, {}).get(recall)
    o = tar[dataset].get(other, {}).get(recall)
    if b is None or o is None:
        return None
    return b / o if o > 0 else None


def fmt(x, digits=2):
    return "n/a" if x is None else f"{x:.{digits}f}"


def main(results: Path):
    print()

    # ---- Figs 7/8/9 and friends: speedups at 90% recall ----------------
    for prefix, title in [
        ("fig6_gqr_vs_qr", "Fig 6 — GQR vs QR (slow start)"),
        ("fig7_8_9_itq", "Figs 7–9 — GQR vs GHR vs HR (ITQ)"),
        ("fig13_14_pcah", "Figs 13–14 — PCAH"),
        ("fig15_16_sh", "Figs 15–16 — SH"),
        ("fig18_mih_itq", "Fig 18 — MIH (ITQ)"),
        ("fig19_mih_pcah", "Fig 19 — MIH (PCAH)"),
        ("fig20_kmh", "Fig 20 — K-means hashing"),
        ("ext_isohash", "Extension — IsoHash"),
    ]:
        f = results / f"{prefix}_time_at_recall.csv"
        if not f.exists():
            continue
        tar = tar_table(read(f))
        print(f"### {title}\n")
        methods = sorted({m for d in tar.values() for m in d})
        ref = [m for m in ("GQR",) if m in methods][0]
        others = [m for m in methods if m != ref]
        header = "| dataset | " + " | ".join(
            f"t₉₀ {m} (s)" for m in [ref] + others
        ) + " | " + " | ".join(f"{m}/{ref} speedup" for m in others) + " |"
        print(header)
        print("|" + "---|" * (1 + len(methods) + len(others)))
        for ds in tar:
            t_ref = tar[ds].get(ref, {}).get("0.90")
            cells = [fmt(tar[ds].get(m, {}).get("0.90"), 3) for m in [ref] + others]
            sp = [fmt(speedup_at(tar, ds, m, ref)) for m in others]
            print(f"| {ds} | " + " | ".join(cells) + " | " + " | ".join(sp) + " |")
        print()

    # ---- Fig 10: U-shape ------------------------------------------------
    f = results / "fig10_code_length.csv"
    if f.exists():
        rows = read(f)
        print("### Fig 10 — code length sweep (t₉₀ seconds)\n")
        by = defaultdict(dict)
        for r in rows:
            key = (r["dataset"], r["method"])
            t = r["time_to_90pct_s"]
            by[key][int(r["code_length"])] = (
                None if t == "unreached" else float(t)
            )
        lengths = sorted({m for v in by.values() for m in v})
        print("| dataset | method | " + " | ".join(f"m={m}" for m in lengths) + " |")
        print("|" + "---|" * (2 + len(lengths)))
        for (ds, method), v in sorted(by.items()):
            print(
                f"| {ds} | {method} | "
                + " | ".join(fmt(v.get(m), 3) for m in lengths)
                + " |"
            )
        print()

    # ---- Fig 11 ---------------------------------------------------------
    f = results / "fig11_vary_k.csv"
    if f.exists():
        print("### Fig 11 — speedup over HR at 90% recall, varying k\n")
        print("| dataset | k | GHR speedup | GQR speedup |")
        print("|---|---|---|---|")
        for r in read(f):
            print(f"| {r['dataset']} | {r['k']} | {r['ghr_speedup']} | {r['gqr_speedup']} |")
        print()

    # ---- Fig 17 / 21-22: final-recall-time pairs ------------------------
    for stem, title in [("fig17_opq_", "Fig 17 — PCAH+GQR vs OPQ+IMI"),
                        ("fig21_22_", "Figs 21–22 — additional datasets")]:
        files = sorted(results.glob(f"{stem}*.csv"))
        files = [f for f in files if "time_at_recall" not in f.name]
        if not files:
            continue
        print(f"### {title} (time to 90% recall, interpolated)\n")
        print("| dataset | method | t₉₀ (s) |")
        print("|---|---|---|")
        for f in files:
            rows = read(f)
            series = defaultdict(list)
            for r in rows:
                series[r["label"]].append((float(r["recall"]), float(r["total_time_s"])))
            ds = f.stem[len(stem):]
            for label, pts in series.items():
                pts.sort(key=lambda p: p[1])
                t90 = None
                prev = None
                for rec, t in pts:
                    if rec >= 0.90:
                        if prev and rec > prev[0]:
                            frac = (0.90 - prev[0]) / (rec - prev[0])
                            t90 = prev[1] + frac * (t - prev[1])
                        else:
                            t90 = t
                        break
                    prev = (rec, t)
                print(f"| {ds} | {label} | {fmt(t90, 3)} |")
        print()

    # ---- Tables ----------------------------------------------------------
    for name, title in [("table1_datasets.csv", "Table 1 — datasets"),
                        ("table2_training_cost.csv", "Table 2 — training cost"),
                        ("table3_datasets.csv", "Table 3 — additional datasets"),
                        ("ext_mplsh_vs_gqr.csv", "Extension — Multi-Probe LSH vs GQR"),
                        ("fig11_vary_k.csv", None)]:
        if title is None:
            continue
        f = results / name
        if not f.exists():
            continue
        rows = read(f)
        if not rows:
            continue
        print(f"### {title}\n")
        cols = list(rows[0].keys())
        print("| " + " | ".join(cols) + " |")
        print("|" + "---|" * len(cols))
        for r in rows:
            print("| " + " | ".join(r[c] for c in cols) + " |")
        print()


if __name__ == "__main__":
    main(Path(sys.argv[1] if len(sys.argv) > 1 else "results"))
