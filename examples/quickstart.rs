//! Quickstart: train ITQ, index a synthetic dataset, and compare GQR with
//! Hamming ranking on the same queries.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gqr::prelude::*;

fn main() {
    // A clustered, image-descriptor-like dataset (20k × 64 at default scale).
    let ds = DatasetSpec::cifar60k().generate(42);
    let m = 11; // ≈ log2(20_000 / 10)
    println!(
        "dataset: {} ({} items × {} dims), code length {m}",
        ds.name(),
        ds.n(),
        ds.dim()
    );

    // Learn similarity-preserving hash functions and build the index.
    let model = Itq::train(ds.as_slice(), ds.dim(), m).expect("training");
    let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
    println!(
        "index: {} occupied buckets, {:.1} items/bucket on average",
        table.n_buckets(),
        table.mean_bucket_size()
    );

    let engine = QueryEngine::new(&model, &table, ds.as_slice(), ds.dim());
    let queries = ds.sample_queries(100, 7);
    let truth = brute_force_knn(&ds, &queries, 10, 0);

    // Same candidate budget, two querying methods.
    for strategy in [
        ProbeStrategy::GenerateQdRanking,
        ProbeStrategy::GenerateHammingRanking,
    ] {
        let params = SearchParams::for_k(10)
            .candidates(400)
            .strategy(strategy)
            .build()
            .expect("valid search params");
        let start = std::time::Instant::now();
        let mut found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let res = engine.search(q, &params);
            found += res.ids.iter().filter(|&&id| t.contains(&id)).count();
        }
        let recall = found as f64 / (10 * queries.len()) as f64;
        println!(
            "{:<4}  recall@10 = {recall:.3} with {} candidates/query in {:?}",
            strategy.name(),
            params.n_candidates,
            start.elapsed()
        );
    }

    // Quantization distance in action: the two buckets at Hamming distance 1
    // from a query are *not* equally promising.
    let q = &queries[0];
    let enc = model.encode_query(q);
    let mut flips: Vec<(usize, f64)> = enc.flip_costs.iter().copied().enumerate().collect();
    flips.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "query code {:0width$b}: cheapest bit flip costs {:.4}, dearest {:.4} — \
         Hamming ranking treats them identically, QD ranking does not",
        enc.code,
        flips.first().unwrap().1,
        flips.last().unwrap().1,
        width = m,
    );
}
