//! A live index: items arrive and depart while queries keep running.
//!
//! Demonstrates the epoch-versioned [`MutableIndex`]: an [`IndexWriter`]
//! routes inserts into an append-only delta segment and deletes into a
//! tombstone set, every mutation publishes a new immutable generation, and
//! a threshold-triggered compaction folds the accumulated churn back into
//! a fresh base segment — all while readers keep querying whichever
//! generation they pinned. The hash functions stay fixed (ITQ trained on
//! the initial snapshot); only membership changes.
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use gqr::prelude::*;
use std::sync::Arc;

fn main() {
    // Initial catalog: first 15k items; 5k more arrive later.
    let full = DatasetSpec::cifar60k().generate(8);
    let dim = full.dim();
    let initial = 15_000;
    let snapshot = Dataset::new("snapshot", dim, full.as_slice()[..initial * dim].to_vec());

    let m = 11;
    let model = Itq::train(snapshot.as_slice(), dim, m).expect("training");
    let metrics = MetricsRegistry::enabled();
    let index: MutableIndex<_> = MutableIndex::builder(Arc::new(model))
        .metrics(metrics.clone())
        .compaction_threshold(2_048)
        .build(snapshot.as_slice(), dim);
    println!(
        "initial index: {} items (epoch {})",
        index.n_items(),
        index.epoch()
    );

    // Stream in the remaining items. Each insert publishes a new epoch;
    // whenever the delta outgrows the threshold the store compacts it into
    // the base segment behind the readers' backs.
    let writer = index.writer();
    let t0 = std::time::Instant::now();
    for id in initial..full.n() {
        let got = writer.insert(full.row(id));
        assert_eq!(got as usize, id, "fresh ids continue the initial range");
    }
    println!(
        "streamed {} arrivals in {:?} ({:.1} µs/insert)",
        full.n() - initial,
        t0.elapsed(),
        t0.elapsed().as_micros() as f64 / (full.n() - initial) as f64
    );

    // Retire every 10th item: a tombstone masks the row at evaluate time.
    let t0 = std::time::Instant::now();
    let mut removed = 0;
    for id in (0..full.n()).step_by(10) {
        if writer.delete(id as u32) {
            removed += 1;
        }
    }
    println!("retired {removed} items in {:?}", t0.elapsed());

    // Queries see the current membership: retired items never come back.
    let params = SearchParams::for_k(10)
        .candidates(2_000)
        .build()
        .expect("valid search params");
    let queries = full.sample_queries(50, 3);
    let mut stale = 0;
    for q in &queries {
        let res = index.run(SearchRequest::new(q).params(params));
        stale += res.ids.iter().filter(|&&id| id % 10 == 0).count();
    }
    println!(
        "{} queries served; {} results referenced retired items (must be 0)",
        queries.len(),
        stale
    );
    assert_eq!(stale, 0);

    // Fold the remaining churn away: after compaction the answers are
    // bit-identical to a fresh rebuild over the live rows.
    index.compact();
    let generation = index.pin();
    println!(
        "index now holds {} items at epoch {} ({} delta rows, {} tombstones after compaction)",
        generation.n_live(),
        generation.epoch(),
        generation.delta_rows(),
        generation.n_tombstones()
    );

    // The operator's view of the churn.
    for name in [
        "gqr_mutations_total{op=\"insert\"}",
        "gqr_mutations_total{op=\"delete\"}",
        "gqr_compaction_total",
    ] {
        if let Some(v) = metrics.counter_value(name) {
            println!("  {name} = {v}");
        }
    }
}
