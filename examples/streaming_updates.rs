//! A live index: items arrive and depart while queries keep running.
//!
//! Demonstrates `HashTable::{insert_item, remove}` — the incremental path a
//! retrieval service uses between periodic re-trains. The hash functions
//! stay fixed (ITQ trained on the initial snapshot); only bucket membership
//! changes.
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use gqr::prelude::*;

fn main() {
    // Initial catalog: first 15k items; 5k more arrive later.
    let full = DatasetSpec::cifar60k().generate(8);
    let dim = full.dim();
    let initial = 15_000;
    let snapshot = Dataset::new("snapshot", dim, full.as_slice()[..initial * dim].to_vec());

    let m = 11;
    let model = Itq::train(snapshot.as_slice(), dim, m).expect("training");
    let mut table = HashTable::build(&model, snapshot.as_slice(), dim);
    println!(
        "initial index: {} items, {} buckets",
        table.n_items(),
        table.n_buckets()
    );

    // Stream in the remaining items.
    let t0 = std::time::Instant::now();
    for id in initial..full.n() {
        table.insert_item(&model, full.row(id), id as u32);
    }
    println!(
        "streamed {} arrivals in {:?} ({:.1} µs/insert)",
        full.n() - initial,
        t0.elapsed(),
        t0.elapsed().as_micros() as f64 / (full.n() - initial) as f64
    );

    // Retire every 10th item.
    let t0 = std::time::Instant::now();
    let mut removed = 0;
    for id in (0..full.n()).step_by(10) {
        let code = model.encode(full.row(id));
        if table.remove(code, id as u32) {
            removed += 1;
        }
    }
    println!("retired {removed} items in {:?}", t0.elapsed());

    // Queries see the current membership: retired items never come back.
    let engine = QueryEngine::new(&model, &table, full.as_slice(), dim);
    let params = SearchParams::for_k(10)
        .candidates(2_000)
        .build()
        .expect("valid search params");
    let queries = full.sample_queries(50, 3);
    let mut stale = 0;
    for q in &queries {
        let res = engine.search(q, &params);
        stale += res.neighbors.iter().filter(|(id, _)| id % 10 == 0).count();
    }
    println!(
        "{} queries served; {} results referenced retired items (must be 0)",
        queries.len(),
        stale
    );
    assert_eq!(stale, 0);
    println!(
        "index now holds {} items in {} buckets",
        table.n_items(),
        table.n_buckets()
    );
}
