//! Side-by-side prober anatomy: watch HR, GHR, QR and GQR choose buckets
//! for the *same* query, and see why quantization distance matters.
//!
//! Uses a small dataset and code length so the full probe sequences are
//! printable; reproduces the paper's Fig 3 reasoning on live data.
//!
//! ```sh
//! cargo run --release --example prober_comparison
//! ```

use gqr::core::probe::{
    GenerateHammingRanking, GenerateQdRanking, HammingRanking, Prober, QdRanking,
};
use gqr::prelude::*;

fn main() {
    let ds = DatasetSpec::audio50k().scale(Scale::Smoke).generate(11);
    let m = 8;
    let model = Pcah::train(ds.as_slice(), ds.dim(), m).expect("training");
    let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
    println!(
        "{} items, {}-bit codes, {} occupied of {} possible buckets\n",
        ds.n(),
        m,
        table.n_buckets(),
        1 << m
    );

    let query = ds.sample_queries(1, 5).remove(0);
    let enc = model.encode_query(&query);
    println!("query code: {:08b}", enc.code);
    println!("per-bit flipping costs |p_i(q)|:");
    for (i, c) in enc.flip_costs.iter().enumerate() {
        println!("  bit {i}: {c:.4}");
    }

    // First 10 buckets from each prober.
    let mut hr = HammingRanking::new(&table);
    let mut ghr = GenerateHammingRanking::new(m);
    let mut qr = QdRanking::new(&table);
    let mut gqr = GenerateQdRanking::new(m);
    let probers: [&mut dyn Prober; 4] = [&mut hr, &mut ghr, &mut qr, &mut gqr];

    println!("\nfirst 10 buckets probed (code, indicator, #items):");
    for p in probers {
        p.reset(&enc);
        print!("  {:<4}", p.name());
        for _ in 0..10 {
            let Some(cost) = p.peek_cost() else { break };
            let Some(code) = p.next_bucket() else { break };
            print!(" {:08b}({:.2},{})", code, cost, table.bucket(code).len());
        }
        println!();
    }

    // The punchline: among buckets at Hamming distance 1, QD separates the
    // promising from the hopeless.
    println!("\nall 8 buckets at Hamming distance 1, ranked by QD:");
    let mut flips: Vec<(u64, f64)> = (0..m)
        .map(|i| {
            let code = enc.code ^ (1 << i);
            (code, quantization_distance(&enc, code))
        })
        .collect();
    flips.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (code, qd) in flips {
        // How good is this bucket really? Average true distance of its items.
        let items = table.bucket(code);
        let avg: f64 = if items.is_empty() {
            f64::NAN
        } else {
            items
                .iter()
                .map(|&id| gqr::linalg::vecops::sq_dist_f32(&query, ds.row(id as usize)) as f64)
                .sum::<f64>()
                / items.len() as f64
        };
        println!(
            "  {code:08b}  QD {qd:.4}  items {:>3}  mean true sq-dist {avg:.3}",
            items.len()
        );
    }
    println!("\nHamming ranking gives all eight the same priority; QD orders them.");
}
