//! Content-based image retrieval: the workload the paper's introduction
//! motivates (similar-item retrieval over GIST-like descriptors).
//!
//! Simulates a retrieval service over one million-scale descriptor set
//! (scaled down by default), builds a PCAH index — the cheapest trainer —
//! and serves top-20 "similar image" queries with GQR, reporting the
//! recall/latency trade-off at several candidate budgets.
//!
//! ```sh
//! cargo run --release --example image_retrieval
//! ```

use gqr::prelude::*;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::gist1m().generate(1);
    let m = 13; // ≈ log2(100_000 / 10)
    println!("catalog: {} descriptors × {} dims", ds.n(), ds.dim());

    let t0 = Instant::now();
    let model = Pcah::train(ds.as_slice(), ds.dim(), m).expect("training");
    println!(
        "PCAH trained in {:?} (no iterations, just one eigendecomposition)",
        t0.elapsed()
    );

    let t0 = Instant::now();
    let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
    println!(
        "indexed in {:?} ({} buckets)",
        t0.elapsed(),
        table.n_buckets()
    );

    let engine = QueryEngine::new(&model, &table, ds.as_slice(), ds.dim());
    let queries = ds.sample_queries(200, 99);
    let truth = brute_force_knn(&ds, &queries, 20, 0);

    println!("\n  budget   recall@20   p50 latency");
    for budget in [200usize, 1_000, 5_000, 20_000] {
        let params = SearchParams::for_k(20)
            .candidates(budget)
            .strategy(ProbeStrategy::GenerateQdRanking)
            .build()
            .expect("valid search params");
        let mut latencies = Vec::with_capacity(queries.len());
        let mut found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let start = Instant::now();
            let res = engine.search(q, &params);
            latencies.push(start.elapsed());
            found += res.ids.iter().filter(|&&id| t.contains(&id)).count();
        }
        latencies.sort();
        let recall = found as f64 / (20 * queries.len()) as f64;
        println!(
            "  {budget:>6}   {recall:>9.3}   {:?}",
            latencies[latencies.len() / 2]
        );
    }

    // A single "more like this" lookup, end to end.
    let probe_img = ds.row(1234).to_vec();
    let params = SearchParams::for_k(5)
        .candidates(2_000)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .build()
        .expect("valid search params");
    let res = engine.search(&probe_img, &params);
    println!("\nimages most similar to #1234 (squared distances):");
    for (id, dist) in res.neighbors() {
        println!("  #{id:<7} {dist:.4}");
    }
    println!(
        "probed {} buckets, evaluated {} of {} descriptors ({:.2}%)",
        res.stats.buckets_probed,
        res.stats.items_evaluated,
        ds.n(),
        100.0 * res.stats.items_evaluated as f64 / ds.n() as f64
    );
}
