//! A miniature query service: sharded index + persistent executor.
//!
//! Wires the serving layer together the way a retrieval service would run
//! it in-process:
//!
//! 1. partition the catalog across shards ([`ShardedIndex`]), each with its
//!    own hash table;
//! 2. start a persistent worker pool ([`Executor`]) — long-lived threads, a
//!    bounded queue with backpressure, per-request deadlines;
//! 3. drive a query stream through the single front door
//!    ([`SearchRequest`]), fanning each request across the shards and
//!    merging per-shard top-k into the exact global top-k;
//! 4. read the serving metrics (queue wait, per-shard spans, deadline
//!    misses) off the shared [`MetricsRegistry`].
//!
//! The merged results are bit-identical to an unsharded engine over the
//! same data — sharding changes the execution plan, never the answer.
//!
//! ```sh
//! cargo run --release --example sharded_service
//! ```

use gqr::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // -- Catalog and model ------------------------------------------------
    let ds = DatasetSpec::cifar60k().scale(Scale::Smoke).generate(42);
    println!("catalog: {} items × {} dims", ds.n(), ds.dim());

    let model = Itq::train(ds.as_slice(), ds.dim(), 12).expect("training");

    // -- Serving state: shards + worker pool + metrics --------------------
    let metrics = MetricsRegistry::enabled();
    let n_shards = 4;
    let t0 = Instant::now();
    let index = ShardedIndexBuilder::new()
        .shards(n_shards)
        .metrics(metrics.clone())
        .build(&model, ds.as_slice(), ds.dim())
        .expect("valid shard configuration");
    println!(
        "built {} shards in {:?} (sizes {:?})",
        index.n_shards(),
        t0.elapsed(),
        index.shard_sizes()
    );

    let exec = Executor::builder()
        .workers(n_shards)
        .metrics(metrics.clone())
        .build();

    // -- Serve a query stream ---------------------------------------------
    let queries = ds.sample_queries(200, 7);
    let params = SearchParams::for_k(10)
        .candidates(500)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .build()
        .expect("valid search params");

    let t0 = Instant::now();
    let mut latencies = Vec::with_capacity(queries.len());
    let mut misses = 0usize;
    for q in &queries {
        // Every request carries an absolute deadline; a late finish is
        // counted under gqr_request_deadline_missed_total.
        let deadline = Instant::now() + Duration::from_millis(50);
        let start = Instant::now();
        let res = index.run_on(
            &exec,
            SearchRequest::new(q).params(params).deadline(deadline),
        );
        latencies.push(start.elapsed());
        assert_eq!(res.len(), 10);
        if Instant::now() > deadline {
            misses += 1;
        }
    }
    let wall = t0.elapsed();
    latencies.sort();
    println!(
        "\nserved {} queries in {:?} ({:.0} qps)",
        queries.len(),
        wall,
        queries.len() as f64 / wall.as_secs_f64()
    );
    println!(
        "latency p50 {:?}  p99 {:?}  deadline misses {}",
        latencies[latencies.len() / 2],
        latencies[latencies.len() * 99 / 100],
        misses
    );

    // -- One filtered request (e.g. a tenant/visibility predicate) --------
    // Filters speak global ids; the sharded path translates them per shard.
    let res = index.run(
        SearchRequest::new(&queries[0])
            .params(params)
            .filter(|id| id % 2 == 0),
    );
    assert!(res.ids.iter().all(|&id| id % 2 == 0));
    println!("filtered request returned {} even-id neighbors", res.len());

    // -- The operator's view ----------------------------------------------
    exec.shutdown();
    let snap = metrics.snapshot();
    println!("\nserving metrics (excerpt):");
    for name in [
        "gqr_executor_jobs_submitted_total",
        "gqr_executor_jobs_completed_total",
        "gqr_sharded_queries_total",
    ] {
        if let Some(v) = metrics.counter_value(name) {
            println!("  {name} = {v}");
        }
    }
    let prom = snap.to_prometheus();
    let shard_lines = prom
        .lines()
        .filter(|l| l.starts_with("gqr_shard_total_ns") && l.contains("_count"))
        .count();
    println!("  per-shard span series (gqr_shard_total_ns *_count lines): {shard_lines}");
}
