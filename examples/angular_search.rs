//! Cosine-similarity search over word-embedding-like vectors.
//!
//! The paper (§4) notes QD ranking adapts to "other similarity metrics such
//! as angular distance": pair an angle-preserving hash family (sign random
//! projections) with an angular re-rank metric. This example runs top-10
//! most-cosine-similar retrieval over a GloVe-like synthetic embedding set.
//!
//! ```sh
//! cargo run --release --example angular_search
//! ```

use gqr::dataset::brute_force_knn_metric;
use gqr::linalg::vecops::Metric;
use gqr::prelude::*;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::glove1_2m().generate(21);
    println!("embeddings: {} × {}", ds.n(), ds.dim());

    // Sign random projections approximate angles; 13 bits ≈ log2(n/10).
    let model = Lsh::train(ds.as_slice(), ds.dim(), 13, 5).expect("training");
    let table: HashTable = HashTable::build(&model, ds.as_slice(), ds.dim());
    let engine =
        QueryEngine::new(&model, &table, ds.as_slice(), ds.dim()).with_metric(Metric::Angular);

    let queries = ds.sample_queries(100, 9);
    let truth = brute_force_knn_metric(&ds, &queries, 10, 0, Metric::Angular);

    println!("\n  budget   angular recall@10   total time");
    for budget in [500usize, 2_000, 10_000] {
        let params = SearchParams::for_k(10)
            .candidates(budget)
            .strategy(ProbeStrategy::GenerateQdRanking)
            .build()
            .expect("valid search params");
        let start = Instant::now();
        let mut found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let res = engine.search(q, &params);
            found += res.ids.iter().filter(|&&id| t.contains(&id)).count();
        }
        println!(
            "  {budget:>6}   {:>17.3}   {:?}",
            found as f64 / (10 * queries.len()) as f64,
            start.elapsed()
        );
    }

    // One "most similar words" lookup.
    let probe = ds.row(777).to_vec();
    let params = SearchParams::for_k(6)
        .candidates(5_000)
        .build()
        .expect("valid search params");
    let res = engine.search(&probe, &params);
    println!("\nvectors most cosine-similar to #777:");
    for (id, dist) in res.neighbors() {
        println!("  #{id:<7} cosine similarity {:.4}", 1.0 - dist);
    }
}
