//! Near-duplicate detection — the de-duplication use case from the paper's
//! introduction.
//!
//! Plants near-duplicates (small perturbations of existing items) in a
//! dataset, then uses the QD early-stop rule: probing halts as soon as the
//! Theorem-2 lower bound proves no remaining bucket can hold anything closer
//! than the current k-th candidate, so duplicate lookups touch only a
//! handful of buckets.
//!
//! ```sh
//! cargo run --release --example dedup
//! ```

use gqr::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let base = DatasetSpec::sift1m().generate(3);
    let dim = base.dim();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(55);

    // Corpus = originals + 500 near-duplicates of random originals.
    let n_dups = 500;
    let mut data = base.as_slice().to_vec();
    let mut dup_of = Vec::with_capacity(n_dups);
    for _ in 0..n_dups {
        let src = rng.gen_range(0..base.n());
        dup_of.push(src as u32);
        let noisy: Vec<f32> = base
            .row(src)
            .iter()
            .map(|&x| x * (1.0 + 0.001 * rng.gen::<f32>()))
            .collect();
        data.extend_from_slice(&noisy);
    }
    let corpus = Dataset::new("corpus-with-dups", dim, data);
    println!(
        "corpus: {} items ({} planted near-duplicates)",
        corpus.n(),
        n_dups
    );

    let m = 13;
    let model = Itq::train(corpus.as_slice(), dim, m).expect("training");
    let table: HashTable = HashTable::build(&model, corpus.as_slice(), dim);
    let engine = QueryEngine::new(&model, &table, corpus.as_slice(), dim);

    // For each planted duplicate, ask: "is something almost identical
    // already in the corpus?" — a 2-NN query (itself + the original).
    let params = SearchParams::for_k(2)
        .candidates(5_000)
        .strategy(ProbeStrategy::GenerateQdRanking)
        .early_stop(true)
        .build()
        .expect("valid search params");
    let mut detected = 0usize;
    let mut total_buckets = 0usize;
    let mut total_items = 0usize;
    let start = std::time::Instant::now();
    for (d, &src) in dup_of.iter().enumerate() {
        let dup_id = (base.n() + d) as u32;
        let q = corpus.row(dup_id as usize).to_vec();
        let res = engine.search(&q, &params);
        total_buckets += res.stats.buckets_probed;
        total_items += res.stats.items_evaluated;
        // The duplicate finds itself at distance 0; its partner must be the
        // planted original.
        if res.ids.contains(&src) {
            detected += 1;
        }
    }
    println!(
        "detected {}/{} duplicates in {:?} — avg {:.1} buckets, {:.0} items per lookup \
         (early stop via the QD lower bound)",
        detected,
        n_dups,
        start.elapsed(),
        total_buckets as f64 / n_dups as f64,
        total_items as f64 / n_dups as f64,
    );

    // Contrast: the same lookups without early stop always spend the full
    // candidate budget.
    let no_stop = SearchParams {
        early_stop: false,
        ..params
    };
    let mut items_no_stop = 0usize;
    for &_src in dup_of.iter().take(50) {
        let q = corpus.row(base.n()).to_vec();
        items_no_stop += engine.search(&q, &no_stop).stats.items_evaluated;
    }
    println!(
        "without early stop the same lookup evaluates {:.0} items on average",
        items_no_stop as f64 / 50.0
    );
}
