//! Memory-constrained deployment: one GQR table versus many GHR tables.
//!
//! The paper's §6.3.5 argument as an operational decision: if your service
//! has a memory budget, multi-table hash lookup buys recall with RAM, while
//! GQR reaches the same recall with a single table. This example prices
//! both options at equal recall.
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use gqr::core::multi_table::MultiTableIndex;
use gqr::l2h::itq::{Itq, ItqOptions};
use gqr::prelude::*;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::tiny5m().generate(17);
    let m = 14;
    println!("dataset: {} × {}, {}-bit codes", ds.n(), ds.dim(), m);

    // Train one model per table with different rotation seeds.
    let n_tables = 8;
    let models: Vec<Itq> = (0..n_tables)
        .map(|s| {
            Itq::train_with(
                ds.as_slice(),
                ds.dim(),
                m,
                &ItqOptions {
                    seed: s as u64,
                    ..Default::default()
                },
            )
            .expect("training")
        })
        .collect();

    let queries = ds.sample_queries(100, 3);
    let truth = brute_force_knn(&ds, &queries, 20, 0);
    let budget = ds.n() / 50;

    let measure = |index: &MultiTableIndex<'_>, strategy: ProbeStrategy, label: &str| {
        let params = SearchParams::for_k(20)
            .candidates(budget)
            .strategy(strategy)
            .build()
            .expect("valid search params");
        let start = Instant::now();
        let mut found = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let res = index.search(q, &params);
            found += res.ids.iter().filter(|&&id| t.contains(&id)).count();
        }
        let recall = found as f64 / (20 * queries.len()) as f64;
        println!(
            "  {label:<12} recall@20 {recall:.3}  {:>7.1} ms total  {:>6.2} MB of tables",
            start.elapsed().as_secs_f64() * 1e3,
            index.approx_bytes() as f64 / 1e6
        );
        recall
    };

    println!("\ncandidate budget {budget} items/query, 100 queries:");
    let single =
        MultiTableIndex::build(vec![&models[0] as &dyn HashModel], ds.as_slice(), ds.dim());
    let gqr_recall = measure(&single, ProbeStrategy::GenerateQdRanking, "GQR × 1");
    measure(&single, ProbeStrategy::GenerateHammingRanking, "GHR × 1");

    for t in [2usize, 4, 8] {
        let refs: Vec<&dyn HashModel> = models[..t].iter().map(|m| m as &dyn HashModel).collect();
        let index = MultiTableIndex::build(refs, ds.as_slice(), ds.dim());
        let r = measure(
            &index,
            ProbeStrategy::GenerateHammingRanking,
            &format!("GHR × {t}"),
        );
        if r >= gqr_recall {
            println!(
                "  → hash lookup needed {t} tables ({}× the memory) to match one GQR table",
                t
            );
            break;
        }
    }
}
