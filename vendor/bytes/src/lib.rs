//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian cursor surface the workspace uses:
//! [`Buf`] for `&[u8]` readers, [`BufMut`] writers, and a Vec-backed
//! [`BytesMut`].

/// Read-side cursor: consuming little-endian primitives from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Consume `n` bytes from the front, returning them.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Read a little-endian `i32`, advancing 4 bytes.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Read a little-endian `u32`, advancing 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Read a little-endian `f32`, advancing 4 bytes.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`, advancing 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let (front, rest) = self.split_at(n);
        *self = rest;
        front
    }
}

/// Write-side cursor: appending little-endian primitives.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (Vec-backed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freeze into an immutable byte vector.
    pub fn freeze(self) -> Vec<u8> {
        self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_i32_le(-7);
        buf.put_f32_le(1.5);
        buf.put_u64_le(u64::MAX - 1);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(1);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_i32_le();
    }
}
