//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), numeric range and
//! fixed/ranged-size `collection::vec` strategies, `Just`, tuple
//! strategies, `prop_map` / `prop_flat_map`, and the `prop_assert*` /
//! `prop_assume` macros. Cases are generated from a deterministic per-test
//! RNG (seeded from the test name), so failures reproduce; there is **no
//! shrinking** — a failing case reports its assertion message only.

pub mod test_runner {
    //! Test-runner configuration and case outcomes.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is skipped.
        Reject(String),
    }

    /// Deterministic xoshiro256++ RNG driving case generation.
    #[derive(Clone, Debug)]
    pub struct StubRng {
        s: [u64; 4],
    }

    impl StubRng {
        /// Seed from a test name so every test has a stable stream.
        pub fn from_name(name: &str) -> StubRng {
            // FNV-1a, then SplitMix64 expansion.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StubRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            (self.next_u64() as u128 * bound) >> 64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::StubRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StubRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StubRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StubRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StubRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::StubRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec()`].
    pub trait IntoSizeRange {
        /// Resolve to `[min, max]` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` strategy: `size` is a fixed `usize` or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u128) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::collection;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// `prop::...` alias for the crate root (e.g. `prop::collection::vec`).
    pub use crate as prop;
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::StubRng::from_name(stringify!($name));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            // Rejections (prop_assume) retry with fresh inputs, bounded so a
            // never-satisfiable assumption cannot loop forever.
            while passed < config.cases && attempts < config.cases.saturating_mul(16) + 64 {
                attempts += 1;
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed after {} cases: {}",
                               stringify!($name), passed, msg);
                    }
                }
            }
            assert!(
                passed >= config.cases.min(1),
                "proptest '{}' rejected every generated input",
                stringify!($name)
            );
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Skip the current case (with fresh inputs retried) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f32>)> {
        (2usize..5).prop_flat_map(|d| (Just(d), prop::collection::vec(-1.0f32..1.0, d * 3)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 1u8..=255, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_ties_sizes((d, v) in pair()) {
            prop_assert_eq!(v.len(), d * 3);
            prop_assert_ne!(d, 0);
        }

        #[test]
        fn assume_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn sized_vecs(v in prop::collection::vec(0u64..50, 5..9)) {
            prop_assert!((5..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::StubRng::from_name("t");
        let mut b = crate::test_runner::StubRng::from_name("t");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
