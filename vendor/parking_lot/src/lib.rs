//! Offline stand-in for the `parking_lot` crate.
//!
//! This vendored stub wraps `std::sync` primitives behind the `parking_lot`
//! API surface the workspace uses (`Mutex`, `RwLock` with non-poisoning
//! guards). Lock poisoning is translated into a panic propagation: a
//! poisoned std lock means a holder panicked, and `parking_lot` semantics
//! are to simply hand out the lock again, so we recover the inner guard.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_after_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
