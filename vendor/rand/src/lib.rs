//! Offline stand-in for the `rand` 0.8 crate.
//!
//! Implements the subset of the rand API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, `gen::<f32/f64/u64/...>`
//! via the [`Standard`] distribution, and `gen_range` over half-open and
//! inclusive numeric ranges. Sampling quality matches rand's approach
//! (53-bit mantissa floats, widening-multiply integer ranges); sequences
//! are NOT bit-compatible with the real crate, only distributionally
//! equivalent — all in-repo consumers generate data and ground truth in the
//! same process, so only determinism and distribution matter.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded, like rand).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: the same expansion rand uses for seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw random bits (rand's `Standard`
/// distribution, here as a trait so `gen::<T>()` stays generic).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> f32 {
        // 24 mantissa bits → uniform in [0, 1), rand's convention.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `gen_range` accepts (rand's `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening multiply: maps 64 random bits onto the span with
                // negligible bias for the spans used here.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Commonly used RNGs (API-compatible module path).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: a xoshiro256++ core (rand's is ChaCha12; this
    /// stand-in only promises determinism and distribution quality).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state xoshiro cannot leave.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean));
    }
}
