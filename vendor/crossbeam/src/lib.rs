//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` (scoped threads whose closures take a
//! `&Scope` argument and whose panics surface as an `Err` from `scope`)
//! implemented over `std::thread::scope`.

use std::panic::AssertUnwindSafe;

/// Scoped-thread handle passed to `scope` closures.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to this `scope` call. The closure receives the
    /// scope again (crossbeam's signature) so it can spawn nested work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let s = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&s)),
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before this
/// returns. A panic from any unjoined thread (or from `f` itself) is
/// captured and returned as `Err`, matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// crossbeam's `thread` module path re-export.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1, 2, 3, 4];
        let sum: i32 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(r.is_err());
    }
}
