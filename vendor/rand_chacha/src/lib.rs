//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] / [`ChaCha20Rng`] names backed by the vendored
//! `rand` stub's xoshiro256++ core. The workspace uses these purely as
//! deterministic seedable RNGs for synthetic data — it never depends on
//! ChaCha keystream compatibility — so only determinism and statistical
//! quality are preserved, not the cipher output.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_stub {
    ($name:ident) => {
        /// Deterministic seedable RNG (xoshiro-backed stand-in).
        #[derive(Clone, Debug)]
        pub struct $name {
            inner: StdRng,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.inner.next_u32()
            }

            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> $name {
                $name {
                    inner: StdRng::from_seed(seed),
                }
            }
        }
    };
}

chacha_stub!(ChaCha8Rng);
chacha_stub!(ChaCha12Rng);
chacha_stub!(ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f: f32 = a.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
