//! Offline stand-in for the `serde_json` crate.
//!
//! The serde stub underneath is a marker trait with no data model, so real
//! (de)serialization is impossible here. To match the workspace's runtime
//! probes, the two halves degrade differently:
//!
//! - **Serializers** succeed but emit a `null` placeholder. Callers probe
//!   fidelity with `serde_json::to_string(&7u32) == Some("7")` (see
//!   `crates/eval/src/report.rs`) and skip content checks when stubbed.
//! - **Deserializers** always return [`Error`]. Callers probe with
//!   `serde_json::from_str::<u32>("1").is_ok()` (`tests/common/mod.rs`)
//!   and gate JSON-reading paths on it.

use std::fmt;

/// Error returned by the deserialization half of this stub.
pub struct Error {
    _priv: (),
}

impl Error {
    fn stub() -> Error {
        Error { _priv: () }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: deserialization unavailable offline")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: deserialization unavailable offline")
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::other(e)
    }
}

/// Stub result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

const PLACEHOLDER: &str = "null";

/// Always fails in the stub.
pub fn from_str<T: serde::de::DeserializeOwned>(_s: &str) -> Result<T> {
    Err(Error::stub())
}

/// Always fails in the stub.
pub fn from_slice<T: serde::de::DeserializeOwned>(_v: &[u8]) -> Result<T> {
    Err(Error::stub())
}

/// Succeeds with a `null` placeholder in the stub.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok(PLACEHOLDER.to_string())
}

/// Succeeds with a `null` placeholder in the stub.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok(PLACEHOLDER.to_string())
}

/// Writes a `null` placeholder in the stub.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    _value: &T,
) -> Result<()> {
    let _ = writer.write_all(PLACEHOLDER.as_bytes());
    Ok(())
}

/// Writes a `null` placeholder in the stub.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<()> {
    to_writer(writer, value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn parse_errors_serialize_placeholders() {
        assert!(super::from_str::<u32>("1").is_err());
        assert_eq!(super::to_string(&7u32).unwrap(), "null");
        let mut sink = Vec::new();
        super::to_writer_pretty(&mut sink, &7u32).unwrap();
        assert_eq!(sink, b"null");
        let io: std::io::Error = super::from_str::<u32>("1").unwrap_err().into();
        assert!(io.to_string().contains("stub"));
    }
}
