//! Offline stand-in for the `serde` crate.
//!
//! `Serialize` and `Deserialize` are marker traits blanket-implemented for
//! every type so generic bounds compile; no actual serialization happens
//! (the vendored `serde_json` returns errors at runtime, and callers gate
//! on a runtime probe — see `tests/common/mod.rs` `serde_json_works`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for serde's `Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for serde's `Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// serde's `de` module surface.
pub mod de {
    /// Marker for types deserializable without borrowing.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}

/// serde's `ser` module surface.
pub mod ser {
    pub use super::Serialize;
}
