//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` stub blanket-implements its `Serialize` /
//! `Deserialize` marker traits for every type, so these derives only need
//! to *accept* the syntax (including `#[serde(...)]` helper attributes)
//! and emit nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]`; the serde stub's blanket impl covers it.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]`; the serde stub's blanket impl covers it.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
