//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! warmup-then-measure timing loop that prints a mean time per iteration.
//! No statistical analysis, outlier detection, or HTML reports.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Throughput annotation (accepted, displayed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark names.
pub trait IntoBenchId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean ns/iter of the last `iter` call (printed by the caller).
    last_mean_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly, recording the mean wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: a few calls so lazy caches/pages settle.
        for _ in 0..3.min(self.samples) {
            hint_black_box(f());
        }
        let iters = self.samples.max(1) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            hint_black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn print_result(group: Option<&str>, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / mean_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    if mean_ns >= 1e6 {
        println!("bench {full:<60} {:>12.3} ms/iter{rate}", mean_ns / 1e6);
    } else if mean_ns >= 1e3 {
        println!("bench {full:<60} {:>12.3} µs/iter{rate}", mean_ns / 1e3);
    } else {
        println!("bench {full:<60} {mean_ns:>12.1} ns/iter{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub has no time-based stopping.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        print_result(
            Some(&self.name),
            &id.into_id(),
            b.last_mean_ns,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        print_result(
            Some(&self.name),
            &id.into_id(),
            b.last_mean_ns,
            self.throughput,
        );
        self
    }

    /// End the group (prints nothing extra in the stub).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Begin a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            last_mean_ns: 0.0,
        };
        f(&mut b);
        print_result(None, id, b.last_mean_ns, None);
        self
    }

    /// Default number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility (CLI args are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }
}
